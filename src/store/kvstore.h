#ifndef MWSIBE_STORE_KVSTORE_H_
#define MWSIBE_STORE_KVSTORE_H_

#include <array>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/obs/metrics.h"
#include "src/store/table.h"

namespace mws::store {

/// Log-structured key–value store: every mutation is appended to a
/// CRC-framed log which doubles as the write-ahead log; the full map is
/// kept in an in-memory ordered index. Open() loads the checkpoint (if
/// one exists) and replays the WAL tail, truncating a torn tail — reopen
/// cost is O(live keys + tail), not O(full history). Compact() (or the
/// automatic `compact_threshold_bytes` trigger) checkpoints the live
/// index and truncates the WAL.
///
/// Record framing: u8 type (1=put, 2=delete) | u32 klen | u32 vlen |
/// key | value | u32 crc32(over all preceding fields). The checkpoint
/// sidecar `<path>.ckpt` uses the same framing behind a magic + footer
/// (src/store/snapshot.h).
///
/// Crash safety of compaction (the recovery invariant): the checkpoint
/// is written to `<path>.ckpt.tmp` and renamed into place only when its
/// terminal footer is on disk, and the checkpoint always covers every
/// byte of the WAL at swap time. Because puts and deletes are absolute,
/// replaying the whole old WAL over the new checkpoint is idempotent —
/// so a crash between the rename and the WAL truncation recovers to
/// exactly the same view, and a crash before the rename leaves the old
/// checkpoint + full WAL untouched. No crash point loses an
/// acknowledged write or resurrects a compacted-away tombstone.
///
/// Concurrency: the index is striped across kShardCount shards, each an
/// ordered map behind its own shared_mutex, so point reads (Get/Contains)
/// on different keys never contend and Scan takes only shared locks. Log
/// appends serialize behind a separate mutex; a writer holds its shard
/// lock across the append so, per key, log order matches index order
/// (the WAL invariant recovery relies on). Lock order is always shard
/// (ascending index) before log, so multi-shard readers (Scan, Compact)
/// cannot deadlock with writers. Compaction scans the live index one
/// shard at a time under shared locks — readers are never blocked; only
/// the final delta-fold + WAL swap briefly holds the log mutex (which
/// stalls writers mid-append, never readers).
class KvStore : public Table {
 public:
  struct Options {
    /// Empty path = purely in-memory store (no durability).
    std::string path;
    /// Optional instrumentation sink (must outlive the store). Exposes
    /// `store.wal_appends`, `store.wal_bytes`, `store.shard_contention`,
    /// `store.compactions`, and the `store.recovery.*` gauges set once
    /// at Open.
    obs::Registry* metrics = nullptr;
    /// When > 0 (and the store is persistent), a mutation that grows the
    /// WAL past this many bytes triggers an automatic checkpoint +
    /// WAL truncation once the mutation's locks are released. 0 keeps
    /// compaction manual (Compact() only).
    size_t compact_threshold_bytes = 0;
  };

  /// Opens (creating or recovering) a store.
  static util::Result<std::unique_ptr<KvStore>> Open(const Options& options);

  ~KvStore() override;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  util::Status Put(const std::string& key, const util::Bytes& value) override;
  /// Groups entries by shard and takes each shard's lock once for its
  /// whole group (the per-key WAL invariant only needs same-key order,
  /// which grouping preserves). One shard lock is held at a time, in
  /// ascending shard order, so the documented lock order is unchanged.
  util::Status PutBatch(const std::vector<std::pair<std::string, util::Bytes>>&
                            entries) override;
  util::Result<util::Bytes> Get(const std::string& key) const override;
  util::Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  std::vector<std::pair<std::string, util::Bytes>> Scan(
      const std::string& prefix) const override;
  std::vector<std::string> ScanKeys(const std::string& prefix) const override;
  size_t CountPrefix(const std::string& prefix) const override;
  size_t Size() const override;
  util::Status Flush() override;

  /// Checkpoints the live index and truncates the WAL (persistent
  /// stores) or drops dead in-memory accounting (in-memory stores).
  /// Returns the number of log records dropped. Safe to call
  /// concurrently with readers and writers; concurrent compactions
  /// serialize.
  util::Result<size_t> Compact();

  /// Records reachable from the persisted state: checkpoint records plus
  /// WAL-tail records appended since the last compaction (live + dead).
  /// Exposed for tests and the E11 bench.
  size_t log_records() const {
    return log_records_.load(std::memory_order_relaxed);
  }

  /// Bytes in the active WAL tail (what the next reopen must replay on
  /// top of the checkpoint).
  size_t wal_bytes() const { return wal_bytes_.load(std::memory_order_relaxed); }

  /// What recovery found at Open: how much state was restored from the
  /// checkpoint vs replayed from the WAL tail, and whether a torn tail
  /// (truncated write or CRC-failed suffix) was dropped. Surfaced so
  /// operators and the resilience tests can distinguish a clean open
  /// from a crash recovery.
  struct RecoveryStats {
    /// Total records restored (checkpoint + WAL tail).
    size_t records_replayed = 0;
    /// Fully-valid WAL-tail bytes replayed.
    size_t bytes_replayed = 0;
    /// Bytes discarded from the WAL tail (0 on a clean open).
    size_t bytes_truncated = 0;
    bool torn_tail = false;
    /// Records / bytes loaded from `<path>.ckpt` (0 when none exists).
    size_t checkpoint_records = 0;
    size_t checkpoint_bytes = 0;
  };
  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Sidecar path of the checkpoint for `path`.
  static std::string CheckpointPath(const std::string& path) {
    return path + ".ckpt";
  }

  /// Removes the WAL and every compaction sidecar (`.ckpt`, scratch
  /// files). Tests and benches that want a truly fresh store must use
  /// this instead of removing only `path` — a stale checkpoint would
  /// otherwise resurrect a previous run's state.
  static void RemoveFiles(const std::string& path);

  /// Number of index stripes (exposed for the striped-lock tests).
  static constexpr size_t kShardCount = 16;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, util::Bytes> map;
  };

  explicit KvStore(Options options) : options_(std::move(options)) {}

  bool persistent() const { return !options_.path.empty(); }
  Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % kShardCount];
  }
  /// Pre: caller holds the key's shard lock exclusively (WAL ordering).
  util::Status AppendRecord(uint8_t type, const std::string& key,
                            const util::Bytes& value);
  /// Loads `<path>.ckpt` (if any) and replays `path`, truncating at the
  /// first torn/corrupt WAL record. A corrupt checkpoint fails the Open
  /// — it cannot be skipped, the WAL tail alone is not the full history.
  /// Runs single-threaded inside Open, before the store is published.
  util::Status Recover();
  /// The compaction engine: fuzzy live-index scan under shared shard
  /// locks into `<path>.ckpt.tmp`, delta fold + atomic rename + WAL
  /// truncation under the log mutex. Returns records dropped.
  util::Result<size_t> Checkpoint();
  /// Fires Checkpoint() when the WAL tail crossed the configured
  /// threshold. Called with no locks held; concurrent triggers collapse.
  void MaybeCompact();

  Options options_;
  mutable std::array<Shard, kShardCount> shards_;
  /// Guards log_ (the append stream). Never held while acquiring a shard
  /// lock.
  std::mutex log_mutex_;
  std::ofstream log_;
  std::atomic<size_t> log_records_{0};
  /// Logical size of the active WAL (bytes appended since the last
  /// truncation; the stream buffer may lag until a flush).
  std::atomic<size_t> wal_bytes_{0};
  /// Serializes compactions (explicit Compact vs threshold trigger).
  std::mutex compact_mutex_;
  std::atomic<bool> compact_running_{false};
  RecoveryStats recovery_;

  /// Resolved once at Open when Options::metrics is set; null otherwise.
  obs::Counter* wal_appends_counter_ = nullptr;
  obs::Counter* wal_bytes_counter_ = nullptr;
  obs::Counter* contention_counter_ = nullptr;
  obs::Counter* compactions_counter_ = nullptr;
  obs::Counter* compaction_failures_counter_ = nullptr;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_KVSTORE_H_
