#ifndef MWSIBE_STORE_KVSTORE_H_
#define MWSIBE_STORE_KVSTORE_H_

#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "src/store/table.h"

namespace mws::store {

/// Log-structured key–value store: every mutation is appended to a
/// CRC-framed log which doubles as the write-ahead log; the full map is
/// kept in an in-memory ordered index. Open() replays the log, truncating
/// a torn tail. Compact() rewrites the log without tombstones and
/// overwritten versions.
///
/// Record framing: u8 type (1=put, 2=delete) | u32 klen | u32 vlen |
/// key | value | u32 crc32(over all preceding fields).
class KvStore : public Table {
 public:
  struct Options {
    /// Empty path = purely in-memory store (no durability).
    std::string path;
  };

  /// Opens (creating or recovering) a store.
  static util::Result<std::unique_ptr<KvStore>> Open(const Options& options);

  ~KvStore() override;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  util::Status Put(const std::string& key, const util::Bytes& value) override;
  util::Result<util::Bytes> Get(const std::string& key) const override;
  util::Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  std::vector<std::pair<std::string, util::Bytes>> Scan(
      const std::string& prefix) const override;
  size_t Size() const override;
  util::Status Flush() override;

  /// Rewrites the log with only live entries. Returns the number of log
  /// records dropped.
  util::Result<size_t> Compact();

  /// Log records appended since Open (live + dead); exposed for tests
  /// and the E11 bench.
  size_t log_records() const { return log_records_; }

 private:
  explicit KvStore(Options options) : options_(std::move(options)) {}

  bool persistent() const { return !options_.path.empty(); }
  util::Status AppendRecord(uint8_t type, const std::string& key,
                            const util::Bytes& value);
  /// Replays `path`; truncates at the first torn/corrupt record.
  util::Status Recover();

  Options options_;
  std::map<std::string, util::Bytes> index_;
  std::ofstream log_;
  size_t log_records_ = 0;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_KVSTORE_H_
