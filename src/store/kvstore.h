#ifndef MWSIBE_STORE_KVSTORE_H_
#define MWSIBE_STORE_KVSTORE_H_

#include <array>
#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/obs/metrics.h"
#include "src/store/table.h"

namespace mws::store {

/// Log-structured key–value store: every mutation is appended to a
/// CRC-framed log which doubles as the write-ahead log; the full map is
/// kept in an in-memory ordered index. Open() replays the log, truncating
/// a torn tail. Compact() rewrites the log without tombstones and
/// overwritten versions.
///
/// Record framing: u8 type (1=put, 2=delete) | u32 klen | u32 vlen |
/// key | value | u32 crc32(over all preceding fields).
///
/// Concurrency: the index is striped across kShardCount shards, each an
/// ordered map behind its own shared_mutex, so point reads (Get/Contains)
/// on different keys never contend and Scan takes only shared locks. Log
/// appends serialize behind a separate mutex; a writer holds its shard
/// lock across the append so, per key, log order matches index order
/// (the WAL invariant recovery relies on). Lock order is always shard
/// (ascending index) before log, so multi-shard readers (Scan, Compact)
/// cannot deadlock with writers.
class KvStore : public Table {
 public:
  struct Options {
    /// Empty path = purely in-memory store (no durability).
    std::string path;
    /// Optional instrumentation sink (must outlive the store). Exposes
    /// `store.wal_appends`, `store.wal_bytes`, `store.shard_contention`,
    /// and the `store.recovery.*` gauges set once at Open.
    obs::Registry* metrics = nullptr;
  };

  /// Opens (creating or recovering) a store.
  static util::Result<std::unique_ptr<KvStore>> Open(const Options& options);

  ~KvStore() override;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  util::Status Put(const std::string& key, const util::Bytes& value) override;
  /// Groups entries by shard and takes each shard's lock once for its
  /// whole group (the per-key WAL invariant only needs same-key order,
  /// which grouping preserves). One shard lock is held at a time, in
  /// ascending shard order, so the documented lock order is unchanged.
  util::Status PutBatch(const std::vector<std::pair<std::string, util::Bytes>>&
                            entries) override;
  util::Result<util::Bytes> Get(const std::string& key) const override;
  util::Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  std::vector<std::pair<std::string, util::Bytes>> Scan(
      const std::string& prefix) const override;
  std::vector<std::string> ScanKeys(const std::string& prefix) const override;
  size_t CountPrefix(const std::string& prefix) const override;
  size_t Size() const override;
  util::Status Flush() override;

  /// Rewrites the log with only live entries. Returns the number of log
  /// records dropped. Excludes concurrent writers for its whole duration.
  util::Result<size_t> Compact();

  /// Log records appended since Open (live + dead); exposed for tests
  /// and the E11 bench.
  size_t log_records() const {
    return log_records_.load(std::memory_order_relaxed);
  }

  /// What WAL replay found at Open: how much survived and whether a
  /// torn tail (truncated write or CRC-failed suffix) was dropped.
  /// Surfaced so operators and the resilience tests can distinguish a
  /// clean open from a crash recovery.
  struct RecoveryStats {
    size_t records_replayed = 0;
    size_t bytes_replayed = 0;
    /// Bytes discarded from the tail (0 on a clean open).
    size_t bytes_truncated = 0;
    bool torn_tail = false;
  };
  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Number of index stripes (exposed for the striped-lock tests).
  static constexpr size_t kShardCount = 16;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, util::Bytes> map;
  };

  explicit KvStore(Options options) : options_(std::move(options)) {}

  bool persistent() const { return !options_.path.empty(); }
  Shard& ShardFor(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % kShardCount];
  }
  /// Pre: caller holds the key's shard lock exclusively (WAL ordering).
  util::Status AppendRecord(uint8_t type, const std::string& key,
                            const util::Bytes& value);
  /// Replays `path`; truncates at the first torn/corrupt record. Runs
  /// single-threaded inside Open, before the store is published.
  util::Status Recover();

  Options options_;
  mutable std::array<Shard, kShardCount> shards_;
  /// Guards log_ (the append stream). Never held while acquiring a shard
  /// lock.
  std::mutex log_mutex_;
  std::ofstream log_;
  std::atomic<size_t> log_records_{0};
  RecoveryStats recovery_;

  /// Resolved once at Open when Options::metrics is set; null otherwise.
  obs::Counter* wal_appends_counter_ = nullptr;
  obs::Counter* wal_bytes_counter_ = nullptr;
  obs::Counter* contention_counter_ = nullptr;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_KVSTORE_H_
