// Unit tests for the client implementations (SmartDevice and
// ReceivingClient) below the full-scenario level: request construction,
// precondition enforcement, and error propagation.

#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/sim/scenario.h"

namespace mws::client {
namespace {

using sim::UtilityScenario;
using util::Bytes;
using util::BytesFromString;

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = UtilityScenario::Create({});
    ASSERT_TRUE(scenario.ok());
    s_ = std::move(scenario).value();
  }

  std::unique_ptr<UtilityScenario> s_;
};

TEST_F(ClientTest, BuildDepositPopulatesEveryField) {
  SmartDevice& device = s_->devices()[0];
  auto request = device.BuildDeposit(UtilityScenario::kElectricAttr,
                                     BytesFromString("payload"));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->device_id, device.device_id());
  EXPECT_EQ(request->attribute, UtilityScenario::kElectricAttr);
  EXPECT_EQ(request->nonce.size(), 16u);
  EXPECT_EQ(request->timestamp_micros, s_->clock().NowMicros());
  EXPECT_FALSE(request->u.empty());
  EXPECT_FALSE(request->ciphertext.empty());
  EXPECT_EQ(request->mac.size(), 32u);  // HMAC-SHA256
  // The U field is a valid curve point.
  EXPECT_TRUE(s_->pkg()
                  .PublicParams()
                  .group->curve()
                  .Deserialize(request->u)
                  .ok());
}

TEST_F(ClientTest, EachDepositUsesFreshNonceAndKey) {
  SmartDevice& device = s_->devices()[0];
  auto a = device.BuildDeposit(UtilityScenario::kElectricAttr,
                               BytesFromString("same"));
  auto b = device.BuildDeposit(UtilityScenario::kElectricAttr,
                               BytesFromString("same"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->nonce, b->nonce);
  EXPECT_NE(a->u, b->u);
  EXPECT_NE(a->ciphertext, b->ciphertext);
}

TEST_F(ClientTest, DepositRejectsInvalidAttribute) {
  SmartDevice& device = s_->devices()[0];
  EXPECT_FALSE(
      device.DepositMessage("not valid!", BytesFromString("m")).ok());
  EXPECT_EQ(device.deposits_sent(), 0u);
}

TEST_F(ClientTest, DepositCountsOnlySuccesses) {
  SmartDevice& device = s_->devices()[0];
  EXPECT_TRUE(device
                  .DepositMessage(UtilityScenario::kElectricAttr,
                                  BytesFromString("m"))
                  .ok());
  EXPECT_EQ(device.deposits_sent(), 1u);
  device.DepositMessage("bad attr", BytesFromString("m")).ok();
  EXPECT_EQ(device.deposits_sent(), 1u);
}

TEST_F(ClientTest, RetrieveRequiresAuthentication) {
  ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  auto result = rc.Retrieve();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ClientTest, RequestKeyRequiresPkgSession) {
  ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  auto result = rc.RequestKey(1, Bytes(16, 0));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ClientTest, AuthenticateWithPkgRejectsForeignToken) {
  s_->DepositReadings(1).value();
  // C-Services obtains a token; Water & Resources cannot use it (it is
  // sealed to C-Services' RSA key).
  ReceivingClient& cs = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(cs.Authenticate().ok());
  auto retrieved = cs.Retrieve();
  ASSERT_TRUE(retrieved.ok());
  ReceivingClient& water = s_->company(UtilityScenario::kWaterResources);
  EXPECT_FALSE(water.AuthenticateWithPkg(retrieved->token).ok());
}

TEST_F(ClientTest, FetchAndDecryptIsIdempotentPerBacklog) {
  s_->DepositReadings(1).value();
  ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  auto first = rc.FetchAndDecrypt().value();
  auto second = rc.FetchAndDecrypt().value();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].message_id, second[i].message_id);
    EXPECT_EQ(first[i].plaintext, second[i].plaintext);
  }
}

TEST_F(ClientTest, SessionStateTransitions) {
  s_->DepositReadings(1).value();
  ReceivingClient& rc = s_->company(UtilityScenario::kElectricGas);
  EXPECT_FALSE(rc.HasMwsSession());
  EXPECT_FALSE(rc.HasPkgSession());
  ASSERT_TRUE(rc.Authenticate().ok());
  EXPECT_TRUE(rc.HasMwsSession());
  auto retrieved = rc.Retrieve().value();
  ASSERT_TRUE(rc.AuthenticateWithPkg(retrieved.token).ok());
  EXPECT_TRUE(rc.HasPkgSession());
}

TEST_F(ClientTest, DecryptMessageRejectsCorruptPoint) {
  s_->DepositReadings(1).value();
  ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto retrieved = rc.Retrieve().value();
  ASSERT_TRUE(rc.AuthenticateWithPkg(retrieved.token).ok());
  auto& m = retrieved.messages[0];
  auto key = rc.RequestKey(m.aid, m.nonce).value();
  wire::RetrievedMessage corrupt = m;
  corrupt.u[1] ^= 0xff;  // breaks point deserialization (or decryption)
  auto result = rc.DecryptMessage(corrupt, key);
  if (result.ok()) {
    auto original = rc.DecryptMessage(m, key).value();
    EXPECT_NE(result.value(), original);
  }
}

TEST_F(ClientTest, BatchKeyExtractionMatchesSingle) {
  s_->DepositReadings(2).value();
  ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto retrieved = rc.Retrieve().value();
  ASSERT_EQ(retrieved.messages.size(), 6u);
  ASSERT_TRUE(rc.AuthenticateWithPkg(retrieved.token).ok());

  std::vector<std::pair<uint64_t, Bytes>> items;
  for (const auto& m : retrieved.messages) items.emplace_back(m.aid, m.nonce);
  auto batch = rc.RequestKeysBatch(items);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), 6u);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(batch->at(i).ok());
    // Batch keys equal singly-requested keys and decrypt the messages.
    auto single = rc.RequestKey(items[i].first, items[i].second).value();
    EXPECT_EQ(batch->at(i).value().d, single.d);
    EXPECT_TRUE(rc.DecryptMessage(retrieved.messages[i],
                                  batch->at(i).value())
                    .ok());
  }
}

TEST_F(ClientTest, BatchExtractionPartialDenialIsPerItem) {
  s_->DepositReadings(1).value();
  ReceivingClient& rc = s_->company(UtilityScenario::kWaterResources);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto retrieved = rc.Retrieve().value();
  ASSERT_EQ(retrieved.messages.size(), 1u);
  ASSERT_TRUE(rc.AuthenticateWithPkg(retrieved.token).ok());

  // Mix the legitimate item with an AID the ticket does not cover.
  std::vector<std::pair<uint64_t, Bytes>> items = {
      {retrieved.messages[0].aid, retrieved.messages[0].nonce},
      {9999, retrieved.messages[0].nonce},
  };
  auto batch = rc.RequestKeysBatch(items);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_TRUE(batch->at(0).ok());
  EXPECT_FALSE(batch->at(1).ok());
  EXPECT_EQ(batch->at(1).status().code(),
            util::StatusCode::kPermissionDenied);
}

TEST_F(ClientTest, BatchExtractionRequiresPkgSession) {
  ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  auto result = rc.RequestKeysBatch({{1, Bytes(16, 0)}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ClientTest, MacKeyMismatchIsRejectedAtMws) {
  // Device configured with a key the MWS does not know.
  const ibe::SystemParams& params = s_->pkg().PublicParams();
  SmartDevice rogue("ELECTRIC-METER-0", Bytes(32, 0xEE), params,
                    s_->options().dem, &s_->transport(), &s_->clock(),
                    &s_->rng());
  auto result = rogue.DepositMessage(UtilityScenario::kElectricAttr,
                                     BytesFromString("m"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnauthenticated());
}

}  // namespace
}  // namespace mws::client
