// Property tests for the precomputation fast paths: fixed-base tables,
// wNAF variable-base scalar multiplication, Jacobian group-law
// overloads, cached Miller-loop lines, and windowed Fp2 exponentiation.
// Every fast path must be bit-identical to its reference implementation
// (field elements are canonical Montgomery residues, so algebraic
// equality is limb equality).

#include <gtest/gtest.h>

#include "src/crypto/drbg.h"
#include "src/ibe/bf_ibe.h"
#include "src/math/params.h"
#include "src/math/precompute.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using crypto::HmacDrbg;
using ibe::BfIbe;
using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;

class PrecomputeTest : public ::testing::Test {
 protected:
  const TypeAParams& P() { return GetParams(ParamPreset::kSmall); }

  /// Edge-case scalars: zero, unit, around the order, negatives.
  std::vector<BigInt> EdgeScalars() {
    const BigInt& q = P().q();
    return {BigInt(0),  BigInt(1),  q - BigInt(1), q,
            q + BigInt(7), BigInt(-1), BigInt(-5),   -q};
  }
};

TEST_F(PrecomputeTest, FixedBaseTableMatchesBinaryReference) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(101);
  EcPoint base = P().RandomPoint(rng);
  FixedBaseTable table(curve, base, P().q());
  for (int i = 0; i < 32; ++i) {
    BigInt k = P().RandomScalar(rng);
    EXPECT_EQ(table.Mul(k), curve.ScalarMulBinary(k, base)) << i;
  }
}

TEST_F(PrecomputeTest, FixedBaseTableEdgeScalars) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(102);
  EcPoint base = P().RandomPoint(rng);
  FixedBaseTable table(curve, base, P().q());
  for (const BigInt& k : EdgeScalars()) {
    // Reduce for the reference too: binary on raw q gives infinity, and
    // negative k folds through the point order either way.
    EXPECT_EQ(table.Mul(k), curve.ScalarMulBinary(k, base));
  }
  EXPECT_TRUE(table.Mul(BigInt(0)).is_infinity());
  EXPECT_TRUE(table.Mul(P().q()).is_infinity());
  EXPECT_EQ(table.Mul(BigInt(1)), base);
}

TEST_F(PrecomputeTest, FixedBaseTableWindowVariantsAgree) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(103);
  EcPoint base = P().RandomPoint(rng);
  BigInt k = P().RandomScalar(rng);
  EcPoint expected = curve.ScalarMulBinary(k, base);
  for (size_t w = 2; w <= 6; ++w) {
    FixedBaseTable table(curve, base, P().q(), w);
    EXPECT_EQ(table.Mul(k), expected) << "window " << w;
  }
}

TEST_F(PrecomputeTest, GeneratorTableBacksMulGenerator) {
  DeterministicRandom rng(104);
  for (int i = 0; i < 8; ++i) {
    BigInt k = P().RandomScalar(rng);
    EXPECT_EQ(P().MulGenerator(k),
              P().curve().ScalarMulBinary(k, P().generator()));
  }
}

TEST_F(PrecomputeTest, WnafScalarMulMatchesBinaryReference) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(105);
  for (int i = 0; i < 24; ++i) {
    EcPoint p = P().RandomPoint(rng);
    BigInt k = P().RandomScalar(rng);
    EXPECT_EQ(curve.ScalarMul(k, p), curve.ScalarMulBinary(k, p)) << i;
  }
}

TEST_F(PrecomputeTest, WnafScalarMulEdgeCases) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(106);
  EcPoint p = P().RandomPoint(rng);
  for (const BigInt& k : EdgeScalars()) {
    EXPECT_EQ(curve.ScalarMul(k, p), curve.ScalarMulBinary(k, p));
  }
  // Small scalars exercise the binary fallback inside the wNAF path.
  for (int64_t small : {0, 1, 2, 3, 7, 255, 256, 257}) {
    EXPECT_EQ(curve.ScalarMul(BigInt(small), p),
              curve.ScalarMulBinary(BigInt(small), p))
        << small;
  }
  // Infinity in, infinity out.
  EXPECT_TRUE(curve.ScalarMul(BigInt(5), EcPoint::Infinity()).is_infinity());
  EXPECT_TRUE(curve.ScalarMul(BigInt(0), p).is_infinity());
}

TEST_F(PrecomputeTest, JacobianOverloadsMatchAffineGroupLaw) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(107);
  for (int i = 0; i < 12; ++i) {
    EcPoint a = P().RandomPoint(rng);
    EcPoint b = P().RandomPoint(rng);
    JacPoint ja = curve.ToJacobian(a);
    JacPoint jb = curve.ToJacobian(b);
    EXPECT_EQ(curve.ToAffine(curve.Add(ja, jb)), curve.Add(a, b));
    EXPECT_EQ(curve.ToAffine(curve.Add(ja, b)), curve.Add(a, b));
    EXPECT_EQ(curve.ToAffine(curve.Double(ja)), curve.Double(a));
    EXPECT_EQ(curve.ToAffine(curve.Negate(ja)), curve.Negate(a));
    // Round trip and identity laws.
    EXPECT_EQ(curve.ToAffine(ja), a);
    EXPECT_EQ(curve.ToAffine(curve.Add(curve.JacInfinity(), a)), a);
    EXPECT_EQ(curve.ToAffine(curve.Add(ja, curve.JacInfinity())), a);
    // p + (-p) = infinity through the mixed path.
    EXPECT_TRUE(curve.ToAffine(curve.Add(ja, curve.Negate(a))).is_infinity());
    // Mixed add degenerating to a double (equal inputs).
    EXPECT_EQ(curve.ToAffine(curve.Add(ja, a)), curve.Double(a));
  }
  EXPECT_TRUE(curve.ToAffine(curve.JacInfinity()).is_infinity());
}

TEST_F(PrecomputeTest, JacobianScalarMulMatchesAffine) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(108);
  for (int i = 0; i < 8; ++i) {
    EcPoint p = P().RandomPoint(rng);
    BigInt k = P().RandomScalar(rng);
    JacPoint jp = curve.ToJacobian(p);
    EXPECT_EQ(curve.ToAffine(curve.ScalarMul(k, jp)), curve.ScalarMul(k, p));
  }
}

TEST_F(PrecomputeTest, BatchToAffineMatchesIndividualConversion) {
  const CurveGroup& curve = P().curve();
  DeterministicRandom rng(109);
  std::vector<JacPoint> points;
  std::vector<EcPoint> expected;
  for (int i = 0; i < 9; ++i) {
    EcPoint p = P().RandomPoint(rng);
    // Mix of scaled representatives and infinity entries.
    JacPoint jp = curve.ToJacobian(p);
    if (i % 2 == 0) jp = curve.Add(curve.Double(jp), curve.Negate(p));
    if (i == 4) jp = curve.JacInfinity();
    points.push_back(jp);
    expected.push_back(curve.ToAffine(jp));
  }
  std::vector<EcPoint> got = BatchToAffine(curve, points);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << i;
  }
}

TEST_F(PrecomputeTest, PairingPrecompMatchesGenericPairing) {
  DeterministicRandom rng(110);
  EcPoint p = P().RandomPoint(rng);
  PairingPrecomp precomp(P(), p);
  EXPECT_EQ(precomp.fixed_point(), p);
  EXPECT_GT(precomp.line_count(), 0u);
  for (int i = 0; i < 8; ++i) {
    EcPoint q = P().RandomPoint(rng);
    // The cached lines are NAF-recoded and normalized, so the raw Miller
    // value differs from the generic loops by a factor in F_p*; the
    // final exponentiation erases it and full pairings are bit-identical
    // on every path (v2 fast and pre-v2 reference).
    EXPECT_EQ(precomp.Pairing(q), P().Pairing(p, q)) << i;
    EXPECT_EQ(precomp.Pairing(q), P().PairingReference(p, q)) << i;
    EXPECT_EQ(P().FinalExponentiation(precomp.Miller(q)),
              P().Pairing(p, q))
        << i;
  }
  // Infinity second argument: pairing is 1 on both paths.
  EXPECT_EQ(precomp.Pairing(EcPoint::Infinity()),
            P().Pairing(p, EcPoint::Infinity()));
}

TEST_F(PrecomputeTest, PairingPrecompOfInfinityIsTrivial) {
  DeterministicRandom rng(111);
  PairingPrecomp precomp(P(), EcPoint::Infinity());
  EcPoint q = P().RandomPoint(rng);
  EXPECT_EQ(precomp.Pairing(q), P().Pairing(EcPoint::Infinity(), q));
  EXPECT_TRUE(precomp.Pairing(q).IsOne());
}

TEST_F(PrecomputeTest, PairingManyMatchesSinglePairings) {
  DeterministicRandom rng(115);
  EcPoint p = P().RandomPoint(rng);
  PairingPrecomp precomp(P(), p);
  std::vector<EcPoint> qs;
  for (int i = 0; i < 6; ++i) qs.push_back(P().RandomPoint(rng));
  // Infinity entries must pass through as 1 without perturbing the rest
  // of the batch (the batched inversion skips them).
  qs.insert(qs.begin() + 2, EcPoint::Infinity());
  std::vector<Fp2> batch = precomp.PairingMany(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(batch[i], precomp.Pairing(qs[i])) << i;
    EXPECT_EQ(batch[i], P().PairingReference(p, qs[i])) << i;
  }
  // Empty and single-element batches.
  EXPECT_TRUE(precomp.PairingMany({}).empty());
  std::vector<Fp2> one = precomp.PairingMany({qs[0]});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], precomp.Pairing(qs[0]));
}

TEST_F(PrecomputeTest, PairingIsSymmetric) {
  // e(a, b) == e(b, a) justifies serving e(x, P) from the generator's
  // cached lines as e(P, x) (IBS Verify, threshold VerifyPartial).
  DeterministicRandom rng(112);
  for (int i = 0; i < 6; ++i) {
    EcPoint a = P().RandomPoint(rng);
    EcPoint b = P().RandomPoint(rng);
    EXPECT_EQ(P().Pairing(a, b), P().Pairing(b, a)) << i;
  }
  EcPoint a = P().RandomPoint(rng);
  EXPECT_EQ(P().generator_pairing().Pairing(a),
            P().Pairing(a, P().generator()));
}

TEST_F(PrecomputeTest, Fp2PowMatchesBinaryReference) {
  DeterministicRandom rng(113);
  Fp2 base = P().Pairing(P().RandomPoint(rng), P().RandomPoint(rng));
  std::vector<BigInt> exponents = {BigInt(0),     BigInt(1), BigInt(2),
                                   BigInt(12345), P().q(),   P().cofactor(),
                                   P().q() * P().cofactor() + BigInt(99)};
  for (int i = 0; i < 8; ++i) exponents.push_back(P().RandomScalar(rng));
  for (const BigInt& e : exponents) {
    EXPECT_EQ(base.Pow(e), base.PowBinary(e));
  }
  EXPECT_TRUE(base.Pow(BigInt(0)).IsOne());
  EXPECT_EQ(base.Pow(BigInt(1)), base);
}

TEST_F(PrecomputeTest, HashToPointLruIsTransparent) {
  BfIbe ibe(P());
  BfIbe fresh(P());
  Bytes id = BytesFromString("METER-7");
  EcPoint first = ibe.HashToPoint(id);
  // Cache hit returns the identical point.
  EXPECT_EQ(ibe.HashToPoint(id), first);
  // A separate instance (separate cache) computes the same value.
  EXPECT_EQ(fresh.HashToPoint(id), first);
  // Push well past the 64-entry capacity so `id` is evicted, then make
  // sure the recomputed value still matches.
  for (int i = 0; i < 100; ++i) {
    ibe.HashToPoint(BytesFromString("filler-" + std::to_string(i)));
  }
  EXPECT_EQ(ibe.HashToPoint(id), first);
  // Evicted-then-recomputed fillers also stay stable.
  EXPECT_EQ(ibe.HashToPoint(BytesFromString("filler-0")),
            fresh.HashToPoint(BytesFromString("filler-0")));
}

TEST_F(PrecomputeTest, EncryptionBitIdenticalWithAndWithoutPrecompute) {
  BfIbe ibe(P());
  HmacDrbg setup_rng(BytesFromString("precompute-setup"));
  auto [params, master] = ibe.Setup(setup_rng);
  ASSERT_TRUE(params.has_precompute());
  ibe::SystemParams cold = params;
  cold.ClearPrecompute();
  ASSERT_FALSE(cold.has_precompute());

  Bytes id = BytesFromString("RC-IDENTITY");
  Bytes message = BytesFromString("the reading is 42 kWh");
  // Identical DRBG streams on both paths: ciphertexts must match byte
  // for byte, proving the fast path computes the exact same values.
  HmacDrbg rng_fast(BytesFromString("precompute-msg"));
  HmacDrbg rng_cold(BytesFromString("precompute-msg"));
  ibe::BasicCiphertext fast = ibe.Encrypt(params, id, message, rng_fast);
  ibe::BasicCiphertext slow = ibe.Encrypt(cold, id, message, rng_cold);
  EXPECT_EQ(fast.u, slow.u);
  EXPECT_EQ(fast.v, slow.v);

  HmacDrbg full_fast(BytesFromString("precompute-full"));
  HmacDrbg full_cold(BytesFromString("precompute-full"));
  ibe::FullCiphertext ff = ibe.EncryptFull(params, id, message, full_fast);
  ibe::FullCiphertext fc = ibe.EncryptFull(cold, id, message, full_cold);
  EXPECT_EQ(ff.u, fc.u);
  EXPECT_EQ(ff.v, fc.v);
  EXPECT_EQ(ff.w, fc.w);

  // And both decrypt.
  auto key = ibe.Extract(master, id);
  EXPECT_EQ(ibe.Decrypt(params, key, fast), message);
  auto round = ibe.DecryptFull(params, key, ff);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), message);
}

TEST_F(PrecomputeTest, PrecomputeIsIdempotentAndRebuildable) {
  BfIbe ibe(P());
  HmacDrbg rng(BytesFromString("idempotent"));
  auto [params, master] = ibe.Setup(rng);
  const auto* table = params.p_pub_table.get();
  params.Precompute();  // Second call must not rebuild.
  EXPECT_EQ(params.p_pub_table.get(), table);
  params.ClearPrecompute();
  EXPECT_FALSE(params.has_precompute());
  params.Precompute();
  ASSERT_TRUE(params.has_precompute());
  DeterministicRandom prng(114);
  EcPoint q = P().RandomPoint(prng);
  EXPECT_EQ(params.p_pub_pairing->Pairing(q), P().Pairing(params.p_pub, q));
}

}  // namespace
}  // namespace mws::math
