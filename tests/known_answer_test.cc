// Known-answer tests against published vectors: DES single-block vectors
// (FIPS 46-3 era test values), SHA-1 (FIPS 180-1 appendix examples,
// including the streamed one-million-'a' message), MD5 (RFC 1321), and
// HMAC (RFC 2202 / RFC 4231). Complements cipher_test/hash_test, which
// cover the remaining standard vectors; nothing here overlaps.

#include <gtest/gtest.h>

#include <string>

#include "src/crypto/block_cipher.h"
#include "src/crypto/hash.h"
#include "src/crypto/hmac.h"
#include "src/util/hex.h"

namespace mws::crypto {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::HexDecode;
using util::HexEncode;

/// Encrypts one 8-byte block under DES and returns the hex ciphertext.
std::string DesEncryptBlockHex(const std::string& key_hex,
                               const std::string& plain_hex) {
  Bytes key = HexDecode(key_hex).value();
  Bytes in = HexDecode(plain_hex).value();
  auto cipher = NewBlockCipher(CipherKind::kDes, key).value();
  Bytes out(8);
  cipher->EncryptBlock(in.data(), out.data());
  return HexEncode(out);
}

TEST(DesKnownAnswerTest, ZeroKeyZeroPlaintext) {
  EXPECT_EQ(DesEncryptBlockHex("0000000000000000", "0000000000000000"),
            "8ca64de9c1b123a7");
}

TEST(DesKnownAnswerTest, AllOnesKeyAllOnesPlaintext) {
  EXPECT_EQ(DesEncryptBlockHex("ffffffffffffffff", "ffffffffffffffff"),
            "7359b2163e4edc58");
}

TEST(DesKnownAnswerTest, NowIsTheTime) {
  // key 0123456789ABCDEF, plaintext "Now is t" — the classic vector from
  // the original DES validation suite write-ups.
  EXPECT_EQ(DesEncryptBlockHex("0123456789abcdef", "4e6f772069732074"),
            "3fa40e8a984d4815");
}

TEST(DesKnownAnswerTest, DecryptInvertsKnownVectors) {
  struct Vector {
    const char* key;
    const char* plain;
    const char* cipher;
  };
  const Vector vectors[] = {
      {"0000000000000000", "0000000000000000", "8ca64de9c1b123a7"},
      {"ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"},
      {"0123456789abcdef", "4e6f772069732074", "3fa40e8a984d4815"},
  };
  for (const Vector& v : vectors) {
    Bytes key = HexDecode(v.key).value();
    Bytes ct = HexDecode(v.cipher).value();
    auto cipher = NewBlockCipher(CipherKind::kDes, key).value();
    Bytes out(8);
    cipher->DecryptBlock(ct.data(), out.data());
    EXPECT_EQ(HexEncode(out), v.plain) << "key " << v.key;
  }
}

TEST(Sha1KnownAnswerTest, TwoBlockMessage) {
  // FIPS 180-1 appendix A example 2 (56 characters, spans two blocks).
  EXPECT_EQ(
      HexEncode(Sha1(BytesFromString(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1KnownAnswerTest, MillionAs) {
  // FIPS 180-1 appendix A example 3, streamed through the incremental
  // interface in uneven chunks to exercise buffering across block
  // boundaries.
  auto hasher = NewHasher(HashKind::kSha1);
  const std::string chunk(4099, 'a');  // prime-sized, misaligned chunks
  size_t remaining = 1'000'000;
  while (remaining > 0) {
    size_t n = std::min(remaining, chunk.size());
    hasher->Update(reinterpret_cast<const uint8_t*>(chunk.data()), n);
    remaining -= n;
  }
  EXPECT_EQ(HexEncode(hasher->Finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Md5KnownAnswerTest, EmptyMessage) {
  // RFC 1321 §A.5 first test string.
  EXPECT_EQ(HexEncode(Md5(Bytes{})), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5KnownAnswerTest, MessageDigestString) {
  // RFC 1321 §A.5: MD5("message digest").
  EXPECT_EQ(HexEncode(Md5(BytesFromString("message digest"))),
            "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(HmacKnownAnswerTest, Rfc2202Sha1Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(Hmac(HashKind::kSha1, key, BytesFromString("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacKnownAnswerTest, Rfc2202Md5Case1) {
  Bytes key(16, 0x0b);
  EXPECT_EQ(HexEncode(Hmac(HashKind::kMd5, key, BytesFromString("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacKnownAnswerTest, Rfc4231Sha256Case3) {
  // 20-byte 0xaa key, 50-byte 0xdd data.
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(
      HexEncode(Hmac(HashKind::kSha256, key, data)),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacKnownAnswerTest, VerifyAcceptsAndRejects) {
  Bytes key(20, 0x0b);
  Bytes data = BytesFromString("Hi There");
  Bytes mac = HexDecode("b617318655057264e28bc0b6fb378c8ef146be00").value();
  EXPECT_TRUE(VerifyHmac(HashKind::kSha1, key, data, mac));
  mac[0] ^= 0x01;
  EXPECT_FALSE(VerifyHmac(HashKind::kSha1, key, data, mac));
}

}  // namespace
}  // namespace mws::crypto
