// Tests for the observability layer: instrument semantics (counter,
// gauge, log-scale histogram and its percentile estimator), the span
// tracer's parenting and ring retention, registry snapshot
// serialization, and — end to end — the `obs.stats` wire endpoint
// serving live metrics from a TCP deployment running the full protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/crypto/rsa.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/wire/auth.h"
#include "src/wire/stats.h"
#include "src/wire/tcp.h"

namespace mws {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::Registry;
using obs::RegistrySnapshot;
using obs::Span;
using obs::SpanRecord;
using obs::Tracer;
using util::Bytes;
using util::BytesFromString;

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.Value(), -15);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Registry registry;
  Counter* c = registry.GetCounter("test.hits");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
}

// --- Histogram buckets ---

TEST(HistogramTest, BucketBoundariesTile) {
  // Bucket 0 holds exactly {0}; bucket i > 0 holds [2^(i-1), 2^i - 1];
  // consecutive buckets tile the integers with no gap or overlap.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  for (size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_EQ(lo, uint64_t{1} << (i - 1));
    EXPECT_EQ(hi, (uint64_t{1} << i) - 1);
    EXPECT_EQ(Histogram::BucketIndex(lo), i);
    EXPECT_EQ(Histogram::BucketIndex(hi), i);
    EXPECT_EQ(Histogram::BucketUpperBound(i - 1) + 1, lo);
  }
  // The last bucket is open-ended and everything huge lands in it.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1), UINT64_MAX);
}

TEST(HistogramTest, SnapshotBasics) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(100);
  h.Record(100);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 201u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 201.0 / 4.0);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(100)], 2u);
}

TEST(HistogramTest, ResetClearsEveryAccumulator) {
  Histogram h;
  h.Record(0);
  h.Record(7);
  h.Record(5000);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  for (uint64_t b : snap.buckets) EXPECT_EQ(b, 0u);
  // The instrument is fully reusable: post-reset recordings behave as
  // on a fresh histogram (min re-seeds from the first sample).
  h.Record(42);
  snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 42u);
  EXPECT_EQ(snap.max, 42u);
}

TEST(RegistryTest, SnapshotAndResetStartsAFreshInterval) {
  Registry registry;
  Counter* c = registry.GetCounter("req", {{"op", "deposit"}});
  Gauge* g = registry.GetGauge("depth");
  Histogram* h = registry.GetHistogram("latency_us");
  c->Increment(3);
  g->Set(17);
  h->Record(100);
  h->Record(200);

  RegistrySnapshot first = registry.SnapshotAndReset();
  ASSERT_NE(first.counter("req{op=deposit}"), nullptr);
  EXPECT_EQ(*first.counter("req{op=deposit}"), 3u);
  ASSERT_NE(first.histogram("latency_us"), nullptr);
  EXPECT_EQ(first.histogram("latency_us")->count, 2u);
  ASSERT_NE(first.gauge("depth"), nullptr);
  EXPECT_EQ(*first.gauge("depth"), 17);

  // Counters and histograms restart at zero; the gauge keeps its level
  // (it describes state, not an interval rate).
  RegistrySnapshot second = registry.Snapshot();
  EXPECT_EQ(*second.counter("req{op=deposit}"), 0u);
  EXPECT_EQ(second.histogram("latency_us")->count, 0u);
  EXPECT_EQ(*second.gauge("depth"), 17);

  // The next interval accumulates independently of the first.
  c->Increment();
  h->Record(50);
  RegistrySnapshot third = registry.SnapshotAndReset();
  EXPECT_EQ(*third.counter("req{op=deposit}"), 1u);
  EXPECT_EQ(third.histogram("latency_us")->count, 1u);
  EXPECT_EQ(third.histogram("latency_us")->max, 50u);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
}

TEST(HistogramTest, PercentileMatchesExactSortWithinBucket) {
  // Property check against 1000 seeded log-uniform samples: for every
  // requested percentile, the estimate must land inside the bucket that
  // contains the exact order statistic, and must be monotone in p.
  util::DeterministicRandom rng(20100301);
  Histogram h;
  std::vector<uint64_t> samples;
  const size_t n = 1000;
  for (size_t i = 0; i < n; ++i) {
    uint64_t magnitude = rng.NextU64() % 30;  // spans buckets 0..30
    uint64_t v = rng.NextU64() & ((uint64_t{1} << magnitude) - 1);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  HistogramSnapshot snap = h.Snapshot();

  double previous = -1.0;
  for (double p : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    const double estimate = snap.Percentile(p);
    // Same rank rule as the implementation: 1-based, clamped to >= 1.
    double rank = p * static_cast<double>(n);
    if (rank < 1.0) rank = 1.0;
    const uint64_t exact =
        samples[static_cast<size_t>(std::ceil(rank)) - 1];
    const size_t bucket = Histogram::BucketIndex(exact);
    EXPECT_GE(estimate,
              static_cast<double>(Histogram::BucketLowerBound(bucket)))
        << "p=" << p << " exact=" << exact;
    EXPECT_LE(estimate,
              static_cast<double>(Histogram::BucketUpperBound(bucket)))
        << "p=" << p << " exact=" << exact;
    EXPECT_GE(estimate, previous) << "percentiles must be monotone, p=" << p;
    previous = estimate;
  }
}

TEST(HistogramTest, SnapshotUnderConcurrentRecording) {
  // Snapshots taken mid-flight must stay internally coherent: count
  // never decreases between snapshots and never exceeds the true total.
  Histogram h;
  constexpr int kThreads = 2;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i) % 1024);
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 100; ++i) {
    HistogramSnapshot snap = h.Snapshot();
    EXPECT_GE(snap.count, last_count);
    EXPECT_LE(snap.count, uint64_t{kThreads} * kPerThread);
    last_count = snap.count;
  }
  for (auto& t : writers) t.join();
  HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_EQ(final_snap.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(final_snap.max, 1023u);
  uint64_t bucket_total = 0;
  for (uint64_t b : final_snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, final_snap.count);
}

// --- Registry ---

TEST(RegistryTest, LabelsAreCanonicalized) {
  Registry registry;
  Counter* a = registry.GetCounter("rpc", {{"op", "put"}, {"code", "ok"}});
  Counter* b = registry.GetCounter("rpc", {{"code", "ok"}, {"op", "put"}});
  EXPECT_EQ(a, b) << "label order must not mint a second instrument";
  a->Increment();
  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.counter("rpc{code=ok,op=put}"), nullptr);
  EXPECT_EQ(*snap.counter("rpc{code=ok,op=put}"), 1u);
  EXPECT_EQ(snap.counter("rpc{op=put,code=ok}"), nullptr);
}

TEST(RegistryTest, StablePointersAcrossLookups) {
  Registry registry;
  Counter* first = registry.GetCounter("x");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("spam." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("x"), first);
}

TEST(RegistryTest, SnapshotEncodeDecodeRoundTrip) {
  Registry registry;
  registry.GetCounter("mws.requests", {{"op", "deposit"}})->Increment(3);
  registry.GetCounter("plain")->Increment(7);
  registry.GetGauge("tcp.queue_depth")->Set(-4);
  Histogram* h = registry.GetHistogram("mws.latency_us", {{"op", "deposit"}});
  for (uint64_t v : {1u, 10u, 100u, 1000u, 10000u}) h->Record(v);

  RegistrySnapshot snap = registry.Snapshot();
  Bytes encoded = snap.Encode();
  auto decoded = RegistrySnapshot::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  ASSERT_EQ(decoded->counters.size(), snap.counters.size());
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(decoded->counters[i], snap.counters[i]);
  }
  ASSERT_EQ(decoded->gauges.size(), snap.gauges.size());
  EXPECT_EQ(decoded->gauges[0], snap.gauges[0]);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  const HistogramSnapshot& orig = snap.histograms[0].second;
  const HistogramSnapshot& back = decoded->histograms[0].second;
  EXPECT_EQ(decoded->histograms[0].first, "mws.latency_us{op=deposit}");
  EXPECT_EQ(back.count, orig.count);
  EXPECT_EQ(back.sum, orig.sum);
  EXPECT_EQ(back.min, orig.min);
  EXPECT_EQ(back.max, orig.max);
  EXPECT_EQ(back.buckets, orig.buckets);

  // Truncated input must fail cleanly, never crash.
  for (size_t cut = 0; cut < encoded.size(); cut += 7) {
    Bytes truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(RegistrySnapshot::Decode(truncated).ok());
  }
}

TEST(RegistryTest, TextAndJsonRendering) {
  Registry registry;
  registry.GetCounter("mws.requests", {{"op", "deposit"}})->Increment(5);
  registry.GetHistogram("lat")->Record(64);
  RegistrySnapshot snap = registry.Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("mws.requests{op=deposit} 5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"mws.requests{op=deposit}\":5"), std::string::npos)
      << json;
}

// --- Tracer ---

TEST(TracerTest, SpanParentingAndSimulatedDurations) {
  util::SimulatedClock clock(1'000);
  Tracer tracer(&clock, /*capacity=*/16);

  Span root = tracer.StartTrace("mws.deposit");
  const uint64_t root_id = root.span_id();
  clock.AdvanceMicros(5);
  {
    Span child = root.Child("sda.verify");
    EXPECT_EQ(child.trace_id(), root.trace_id());
    EXPECT_EQ(child.parent_id(), root_id);
    clock.AdvanceMicros(7);
  }  // child finishes here
  clock.AdvanceMicros(3);
  root.End();

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Finish order: child first, root second.
  EXPECT_EQ(spans[0].name, "sda.verify");
  EXPECT_EQ(spans[0].parent_id, root_id);
  EXPECT_EQ(spans[0].DurationMicros(), 7);
  EXPECT_EQ(spans[1].name, "mws.deposit");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[1].DurationMicros(), 15);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(tracer.spans_started(), 2u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
}

TEST(TracerTest, RingRetainsNewestOldestFirst) {
  util::SimulatedClock clock(0);
  Tracer tracer(&clock, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span s = tracer.StartTrace("op-" + std::to_string(i));
    clock.AdvanceMicros(1);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "op-6");
  EXPECT_EQ(spans[3].name, "op-9");
  EXPECT_EQ(tracer.spans_started(), 10u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
}

TEST(TracerTest, InertSpansAreFullyInert) {
  Span inert = Tracer::MaybeStartTrace(nullptr, "ghost");
  EXPECT_FALSE(inert.active());
  Span child = inert.Child("ghost-child");
  EXPECT_FALSE(child.active());
  child.End();
  inert.End();  // no-ops, must not crash

  Span moved_from = Tracer::MaybeStartTrace(nullptr, "x");
  Span moved_to = std::move(moved_from);
  EXPECT_FALSE(moved_to.active());
}

TEST(TracerTest, SpanEncodeDecodeRoundTrip) {
  util::SimulatedClock clock(500);
  Tracer tracer(&clock, 8);
  {
    Span root = tracer.StartTrace("a");
    clock.AdvanceMicros(9);
    Span child = root.Child("b");
    clock.AdvanceMicros(2);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  Bytes encoded = obs::EncodeSpans(spans);
  auto decoded = obs::DecodeSpans(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(decoded->at(i).trace_id, spans[i].trace_id);
    EXPECT_EQ(decoded->at(i).span_id, spans[i].span_id);
    EXPECT_EQ(decoded->at(i).parent_id, spans[i].parent_id);
    EXPECT_EQ(decoded->at(i).name, spans[i].name);
    EXPECT_EQ(decoded->at(i).start_micros, spans[i].start_micros);
    EXPECT_EQ(decoded->at(i).end_micros, spans[i].end_micros);
  }
  Bytes truncated(encoded.begin(), encoded.begin() + encoded.size() / 2);
  EXPECT_FALSE(obs::DecodeSpans(truncated).ok());
}

// --- End to end: deposit + retrieve over TCP, then STATS ---

TEST(StatsEndpointTest, LiveMetricsOverTcp) {
  util::SimulatedClock clock(1'000'000'000);
  util::DeterministicRandom rng(7);
  obs::Registry registry;
  obs::Tracer tracer(&clock, 64);
  auto storage =
      store::KvStore::Open({.path = "", .metrics = &registry}).value();
  Bytes service_key(32, 0x3c);

  mws::MwsOptions mws_options;
  mws_options.metrics = &registry;
  mws_options.tracer = &tracer;
  mws::MwsService warehouse(storage.get(), service_key, &clock, &rng,
                            mws_options);
  pkg::PkgOptions pkg_options;
  pkg_options.metrics = &registry;
  pkg_options.tracer = &tracer;
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall), service_key,
                      &clock, &rng, pkg_options);

  wire::InProcessTransport mws_backend, pkg_backend;
  warehouse.RegisterEndpoints(&mws_backend);
  pkg.RegisterEndpoints(&pkg_backend);
  wire::RegisterStatsEndpoint(&mws_backend, &registry, &tracer);
  wire::TcpServer::Options server_options;
  server_options.metrics = &registry;
  auto mws_server =
      wire::TcpServer::Start(&mws_backend, 0, server_options).value();
  auto pkg_server = wire::TcpServer::Start(&pkg_backend, 0).value();

  wire::TcpClientTransport mws_conn("127.0.0.1", mws_server->port());
  wire::TcpClientTransport pkg_conn("127.0.0.1", pkg_server->port());
  class Mux : public wire::Transport {
   public:
    Mux(Transport* mws, Transport* pkg) : mws_(mws), pkg_(pkg) {}
    util::Result<Bytes> Call(const std::string& endpoint,
                             const Bytes& request) override {
      if (endpoint.rfind("pkg.", 0) == 0) return pkg_->Call(endpoint, request);
      return mws_->Call(endpoint, request);
    }

   private:
    Transport* mws_;
    Transport* pkg_;
  } mux(&mws_conn, &pkg_conn);

  Bytes mac_key(32, 0x11);
  ASSERT_TRUE(warehouse.RegisterDevice("SD-1", mac_key).ok());
  auto keys = crypto::RsaGenerateKeyPair(768, rng).value();
  ASSERT_TRUE(warehouse
                  .RegisterReceivingClient(
                      "RC-1", wire::HashPassword("pw"),
                      crypto::SerializeRsaPublicKey(keys.public_key))
                  .ok());
  ASSERT_TRUE(warehouse.GrantAttribute("RC-1", "ELECTRIC-STATS-TEST").ok());

  client::SmartDevice device("SD-1", mac_key, pkg.PublicParams(),
                             crypto::CipherKind::kDes, &mux, &clock, &rng);
  for (int i = 0; i < 3; ++i) {
    auto id = device.DepositMessage("ELECTRIC-STATS-TEST",
                                    BytesFromString("kWh=2.5 over tcp"));
    ASSERT_TRUE(id.ok()) << id.status();
  }
  client::ReceivingClient rc("RC-1", "pw", std::move(keys), pkg.PublicParams(),
                             crypto::CipherKind::kDes, crypto::CipherKind::kDes,
                             &mux, &clock, &rng);
  auto messages = rc.FetchAndDecrypt();
  ASSERT_TRUE(messages.ok()) << messages.status();
  ASSERT_EQ(messages->size(), 3u);

  // Fetch the stats over the same wire the protocol used.
  auto dump = wire::FetchStats(&mws_conn, /*include_spans=*/true);
  ASSERT_TRUE(dump.ok()) << dump.status();
  const RegistrySnapshot& snap = dump->registry;

  const uint64_t* deposits = snap.counter("mws.requests{op=deposit}");
  ASSERT_NE(deposits, nullptr);
  EXPECT_EQ(*deposits, 3u);
  const uint64_t* retrieves = snap.counter("mws.requests{op=retrieve}");
  ASSERT_NE(retrieves, nullptr);
  EXPECT_GE(*retrieves, 1u);
  const uint64_t* auth_ok = snap.counter("gatekeeper.auth_ok");
  ASSERT_NE(auth_ok, nullptr);
  EXPECT_GE(*auth_ok, 1u);
  ASSERT_NE(snap.counter("pkg.requests{op=auth}"), nullptr);

  for (const char* name :
       {"mws.latency_us{op=deposit}", "mws.latency_us{op=retrieve}",
        "tcp.request_us{op=mws.deposit}"}) {
    const HistogramSnapshot* h = snap.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GE(h->count, 1u) << name;
    const double p50 = h->Percentile(0.50);
    const double p95 = h->Percentile(0.95);
    const double p99 = h->Percentile(0.99);
    EXPECT_LE(p50, p95) << name;
    EXPECT_LE(p95, p99) << name;
  }

  // The trace ring came along: deposit roots plus their child stages.
  ASSERT_FALSE(dump->spans.empty());
  bool saw_deposit_root = false;
  bool saw_child_stage = false;
  for (const SpanRecord& span : dump->spans) {
    if (span.name == "mws.deposit" && span.parent_id == 0) {
      saw_deposit_root = true;
    }
    if (span.parent_id != 0) saw_child_stage = true;
  }
  EXPECT_TRUE(saw_deposit_root);
  EXPECT_TRUE(saw_child_stage);

  // Without spans the payload shrinks to the registry alone.
  auto lean = wire::FetchStats(&mws_conn, /*include_spans=*/false);
  ASSERT_TRUE(lean.ok()) << lean.status();
  EXPECT_TRUE(lean->spans.empty());
  EXPECT_NE(lean->registry.counter("mws.requests{op=deposit}"), nullptr);
}

}  // namespace
}  // namespace mws
