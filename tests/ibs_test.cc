#include <gtest/gtest.h>

#include "src/crypto/kdf.h"
#include "src/ibe/ibs.h"
#include "src/math/params.h"
#include "src/util/random.h"

namespace mws::ibe {
namespace {

using math::GetParams;
using math::ParamPreset;
using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;

class IbsTest : public ::testing::Test {
 protected:
  IbsTest()
      : group_(GetParams(ParamPreset::kSmall)),
        ibs_(group_),
        ibe_(group_),
        rng_(31) {
    auto setup = ibe_.Setup(rng_);
    params_ = setup.first;
    master_ = setup.second;
  }

  IbePrivateKey KeyFor(const std::string& id) {
    return ibe_.Extract(master_, BytesFromString(id));
  }

  const math::TypeAParams& group_;
  IbSignatures ibs_;
  BfIbe ibe_;
  DeterministicRandom rng_;
  SystemParams params_;
  MasterKey master_;
};

TEST_F(IbsTest, SignVerifyRoundTrip) {
  Bytes message = BytesFromString("meter=E-1 kWh=3.2 ts=12345");
  auto signature = ibs_.Sign(KeyFor("ELECTRIC-METER-0"), message);
  EXPECT_TRUE(ibs_.Verify(params_, BytesFromString("ELECTRIC-METER-0"),
                          message, signature));
}

TEST_F(IbsTest, RejectsTamperedMessage) {
  Bytes message = BytesFromString("original message");
  auto signature = ibs_.Sign(KeyFor("SD"), message);
  Bytes tampered = message;
  tampered[0] ^= 1;
  EXPECT_FALSE(
      ibs_.Verify(params_, BytesFromString("SD"), tampered, signature));
}

TEST_F(IbsTest, RejectsWrongSignerIdentity) {
  Bytes message = BytesFromString("message");
  auto signature = ibs_.Sign(KeyFor("DEVICE-A"), message);
  EXPECT_FALSE(ibs_.Verify(params_, BytesFromString("DEVICE-B"), message,
                           signature));
}

TEST_F(IbsTest, RejectsForgedSignature) {
  Bytes message = BytesFromString("message");
  // Random point as "signature".
  IbSignatures::Signature forged{group_.RandomPoint(rng_)};
  EXPECT_FALSE(
      ibs_.Verify(params_, BytesFromString("SD"), message, forged));
  // Infinity must be rejected outright.
  IbSignatures::Signature zero{math::EcPoint::Infinity()};
  EXPECT_FALSE(ibs_.Verify(params_, BytesFromString("SD"), message, zero));
}

TEST_F(IbsTest, RejectsSignatureFromOtherDeployment) {
  // Key extracted under a different master secret.
  BfIbe other(group_);
  DeterministicRandom rng2(99);
  auto [params2, master2] = other.Setup(rng2);
  Bytes message = BytesFromString("message");
  auto signature =
      ibs_.Sign(other.Extract(master2, BytesFromString("SD")), message);
  EXPECT_FALSE(
      ibs_.Verify(params_, BytesFromString("SD"), message, signature));
  // But it verifies under its own deployment's params.
  EXPECT_TRUE(
      ibs_.Verify(params2, BytesFromString("SD"), message, signature));
}

TEST_F(IbsTest, DistinctMessagesDistinctSignatures) {
  IbePrivateKey key = KeyFor("SD");
  auto s1 = ibs_.Sign(key, BytesFromString("m1"));
  auto s2 = ibs_.Sign(key, BytesFromString("m2"));
  EXPECT_NE(s1.sigma, s2.sigma);
  // Deterministic scheme: same message, same signature.
  auto s1_again = ibs_.Sign(key, BytesFromString("m1"));
  EXPECT_EQ(s1.sigma, s1_again.sigma);
}

TEST_F(IbsTest, SerializationRoundTrip) {
  auto signature = ibs_.Sign(KeyFor("SD"), BytesFromString("m"));
  Bytes wire = ibs_.Serialize(signature);
  EXPECT_EQ(wire.size(), ibs_.SignatureBytes());
  auto back = ibs_.Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sigma, signature.sigma);
  // Garbage rejected.
  EXPECT_FALSE(ibs_.Deserialize(Bytes(10, 0xff)).ok());
  // Off-curve point rejected by Deserialize.
  wire[wire.size() / 2] ^= 1;
  auto corrupted = ibs_.Deserialize(wire);
  if (corrupted.ok()) {
    EXPECT_FALSE(ibs_.Verify(params_, BytesFromString("SD"),
                             BytesFromString("m"), corrupted.value()));
  }
}

TEST_F(IbsTest, EmptyAndLargeMessages) {
  IbePrivateKey key = KeyFor("SD");
  for (size_t len : {0u, 1u, 10'000u}) {
    Bytes message(len, 'a');
    auto signature = ibs_.Sign(key, message);
    EXPECT_TRUE(
        ibs_.Verify(params_, BytesFromString("SD"), message, signature))
        << len;
  }
}

TEST_F(IbsTest, ProductCheckMatchesClassicalVerify) {
  // Verify is implemented as one product-of-pairings membership check;
  // this pins it to the classical two-pairing comparison
  // e(sigma, P) == e(Q_ID, P_pub)^h on both accept and reject paths.
  auto hash_message = [&](const Bytes& message) {
    const math::BigInt& q = group_.q();
    Bytes tagged = util::Concat(Bytes{0x05}, message);
    size_t len = (q.BitLength() + 7) / 8 + 16;
    Bytes expanded =
        crypto::HashExpand(crypto::HashKind::kSha256, tagged, len);
    return math::BigInt::Mod(math::BigInt::FromBytesBe(expanded),
                             q - math::BigInt(1)) +
           math::BigInt(1);
  };
  auto classical_verify = [&](const Bytes& id, const Bytes& message,
                              const IbSignatures::Signature& sig) {
    if (sig.sigma.is_infinity() || !group_.curve().IsOnCurve(sig.sigma)) {
      return false;
    }
    math::Fp2 lhs = group_.Pairing(sig.sigma, group_.generator());
    math::Fp2 rhs = group_.Pairing(ibe_.HashToPoint(id), params_.p_pub)
                        .Pow(hash_message(message));
    return lhs == rhs;
  };
  Bytes id = BytesFromString("SD-7");
  Bytes message = BytesFromString("reading=42");
  auto signature = ibs_.Sign(KeyFor("SD-7"), message);
  struct Case {
    Bytes id;
    Bytes message;
  } cases[] = {
      {id, message},                                   // accept
      {id, BytesFromString("reading=43")},             // tampered message
      {BytesFromString("SD-8"), message},              // wrong signer
  };
  for (const Case& c : cases) {
    EXPECT_EQ(ibs_.Verify(params_, c.id, c.message, signature),
              classical_verify(c.id, c.message, signature));
  }
  EXPECT_TRUE(ibs_.Verify(params_, id, message, signature));
  EXPECT_FALSE(ibs_.Verify(params_, id, cases[1].message, signature));
  // A forged sigma (random point) must reject identically.
  IbSignatures::Signature forged{group_.RandomPoint(rng_)};
  EXPECT_EQ(ibs_.Verify(params_, id, message, forged),
            classical_verify(id, message, forged));
  EXPECT_FALSE(ibs_.Verify(params_, id, message, forged));
  // Same equivalences with the P_pub line cache dropped (the product's
  // second term then computes its lines live).
  SystemParams cold = params_;
  cold.ClearPrecompute();
  EXPECT_TRUE(ibs_.Verify(cold, id, message, signature));
  EXPECT_FALSE(ibs_.Verify(cold, id, cases[1].message, signature));
  EXPECT_FALSE(ibs_.Verify(cold, id, message, forged));
}

TEST_F(IbsTest, SigningKeyIsTheDecryptionKey) {
  // One extraction serves both primitives: the deposit can be signed and
  // replies encrypted with a single PKG interaction.
  Bytes id = BytesFromString("SD");
  IbePrivateKey key = ibe_.Extract(master_, id);
  Bytes message = BytesFromString("dual-use payload");
  // Decrypt.
  BasicCiphertext ct = ibe_.Encrypt(params_, id, message, rng_);
  EXPECT_EQ(ibe_.Decrypt(params_, key, ct), message);
  // Sign.
  auto signature = ibs_.Sign(key, message);
  EXPECT_TRUE(ibs_.Verify(params_, id, message, signature));
}

}  // namespace
}  // namespace mws::ibe
