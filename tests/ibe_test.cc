#include <gtest/gtest.h>

#include "src/crypto/block_cipher.h"
#include "src/ibe/attribute.h"
#include "src/ibe/bf_ibe.h"
#include "src/ibe/hybrid.h"
#include "src/math/params.h"
#include "src/util/random.h"

namespace mws::ibe {
namespace {

using math::GetParams;
using math::ParamPreset;
using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;

class BfIbeTest : public ::testing::Test {
 protected:
  BfIbeTest() : ibe_(GetParams(ParamPreset::kSmall)), rng_(42) {
    auto setup = ibe_.Setup(rng_);
    params_ = setup.first;
    master_ = setup.second;
  }

  BfIbe ibe_;
  DeterministicRandom rng_;
  SystemParams params_;
  MasterKey master_;
};

TEST_F(BfIbeTest, SetupPublishesSP) {
  const auto& group = ibe_.group();
  EXPECT_EQ(params_.p_pub,
            group.curve().ScalarMul(master_.s, group.generator()));
  EXPECT_FALSE(params_.p_pub.is_infinity());
}

TEST_F(BfIbeTest, HashToPointDeterministicOrderQ) {
  Bytes id = BytesFromString("[email protected]");
  math::EcPoint q1 = ibe_.HashToPoint(id);
  math::EcPoint q2 = ibe_.HashToPoint(id);
  EXPECT_EQ(q1, q2);
  EXPECT_TRUE(ibe_.group().curve().IsOnCurve(q1));
  EXPECT_TRUE(ibe_.group().curve().ScalarMul(ibe_.group().q(), q1)
                  .is_infinity());
  EXPECT_NE(q1, ibe_.HashToPoint(BytesFromString("other-identity")));
}

TEST_F(BfIbeTest, ExtractConsistent) {
  Bytes id = BytesFromString("ELECTRIC-BAYTOWER-SV-CA");
  IbePrivateKey d1 = ibe_.Extract(master_, id);
  IbePrivateKey d2 = ibe_.ExtractFromPoint(master_, ibe_.HashToPoint(id));
  EXPECT_EQ(d1.d, d2.d);
  EXPECT_EQ(d1.d, ibe_.group().curve().ScalarMul(master_.s,
                                                 ibe_.HashToPoint(id)));
}

TEST_F(BfIbeTest, BasicIdentRoundTrip) {
  Bytes id = BytesFromString("this_paper_is_based_on_IBE!");
  Bytes msg = BytesFromString("kWh=42.7 meter=E-100 ts=2010-03-01T00:00Z");
  BasicCiphertext ct = ibe_.Encrypt(params_, id, msg, rng_);
  IbePrivateKey key = ibe_.Extract(master_, id);
  EXPECT_EQ(ibe_.Decrypt(params_, key, ct), msg);
}

TEST_F(BfIbeTest, BasicIdentVariousLengths) {
  Bytes id = BytesFromString("id");
  IbePrivateKey key = ibe_.Extract(master_, id);
  DeterministicRandom data_rng(7);
  for (size_t len : {0u, 1u, 31u, 32u, 33u, 100u, 1024u}) {
    Bytes msg = data_rng.Generate(len);
    BasicCiphertext ct = ibe_.Encrypt(params_, id, msg, rng_);
    EXPECT_EQ(ct.v.size(), len);
    EXPECT_EQ(ibe_.Decrypt(params_, key, ct), msg);
  }
}

TEST_F(BfIbeTest, WrongIdentityKeyGarbles) {
  Bytes id = BytesFromString("intended-recipient");
  Bytes msg = BytesFromString("secret meter reading payload....");
  BasicCiphertext ct = ibe_.Encrypt(params_, id, msg, rng_);
  IbePrivateKey wrong = ibe_.Extract(master_, BytesFromString("attacker"));
  EXPECT_NE(ibe_.Decrypt(params_, wrong, ct), msg);
}

TEST_F(BfIbeTest, EncryptionRandomized) {
  Bytes id = BytesFromString("id");
  Bytes msg = BytesFromString("same message");
  BasicCiphertext a = ibe_.Encrypt(params_, id, msg, rng_);
  BasicCiphertext b = ibe_.Encrypt(params_, id, msg, rng_);
  EXPECT_NE(a.u, b.u);
  EXPECT_NE(a.v, b.v);
}

TEST_F(BfIbeTest, DifferentMasterSecretsDifferentKeys) {
  BfIbe other_ibe(GetParams(ParamPreset::kSmall));
  DeterministicRandom rng2(99);
  auto [params2, master2] = other_ibe.Setup(rng2);
  Bytes id = BytesFromString("id");
  EXPECT_NE(ibe_.Extract(master_, id).d, other_ibe.Extract(master2, id).d);
  // A key from the wrong deployment cannot decrypt.
  Bytes msg = BytesFromString("cross-deployment message");
  BasicCiphertext ct = ibe_.Encrypt(params_, id, msg, rng_);
  EXPECT_NE(ibe_.Decrypt(params_, other_ibe.Extract(master2, id), ct), msg);
}

TEST_F(BfIbeTest, FullIdentRoundTrip) {
  Bytes id = BytesFromString("cca-secure-recipient");
  Bytes msg = BytesFromString("payload requiring CCA security");
  FullCiphertext ct = ibe_.EncryptFull(params_, id, msg, rng_);
  IbePrivateKey key = ibe_.Extract(master_, id);
  auto back = ibe_.DecryptFull(params_, key, ct);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), msg);
}

TEST_F(BfIbeTest, FullIdentRejectsTampering) {
  Bytes id = BytesFromString("id");
  Bytes msg = BytesFromString("tamper-evident payload");
  FullCiphertext ct = ibe_.EncryptFull(params_, id, msg, rng_);
  IbePrivateKey key = ibe_.Extract(master_, id);

  FullCiphertext bad_w = ct;
  bad_w.w[0] ^= 1;
  EXPECT_FALSE(ibe_.DecryptFull(params_, key, bad_w).ok());

  FullCiphertext bad_v = ct;
  bad_v.v[5] ^= 1;
  EXPECT_FALSE(ibe_.DecryptFull(params_, key, bad_v).ok());

  FullCiphertext bad_u = ct;
  bad_u.u = ibe_.group().curve().Double(ct.u);
  EXPECT_FALSE(ibe_.DecryptFull(params_, key, bad_u).ok());

  FullCiphertext bad_len = ct;
  bad_len.v.pop_back();
  EXPECT_FALSE(ibe_.DecryptFull(params_, key, bad_len).ok());
}

TEST_F(BfIbeTest, FullIdentRejectsWrongKey) {
  Bytes id = BytesFromString("intended");
  FullCiphertext ct =
      ibe_.EncryptFull(params_, id, BytesFromString("msg"), rng_);
  IbePrivateKey wrong = ibe_.Extract(master_, BytesFromString("other"));
  EXPECT_FALSE(ibe_.DecryptFull(params_, wrong, ct).ok());
}

TEST_F(BfIbeTest, DecryptManyBitIdenticalToDecrypt) {
  // The batched path (shared PairingPrecomp + batched final
  // exponentiation) must reproduce Decrypt byte for byte, including a
  // ciphertext encrypted for a DIFFERENT identity (BasicIdent has no
  // integrity — both paths must emit the same garbage).
  Bytes id = BytesFromString("bulk-recipient");
  IbePrivateKey key = ibe_.Extract(master_, id);
  std::vector<BasicCiphertext> cts;
  for (int i = 0; i < 5; ++i) {
    cts.push_back(ibe_.Encrypt(params_, id,
                               BytesFromString("m" + std::to_string(i)),
                               rng_));
  }
  cts.push_back(
      ibe_.Encrypt(params_, BytesFromString("someone-else"),
                   BytesFromString("not for us"), rng_));
  std::vector<Bytes> bulk = ibe_.DecryptMany(params_, key, cts);
  ASSERT_EQ(bulk.size(), cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    EXPECT_EQ(bulk[i], ibe_.Decrypt(params_, key, cts[i])) << i;
  }
  EXPECT_EQ(bulk[0], BytesFromString("m0"));
  // Size-0 and size-1 batches take the trivial paths.
  EXPECT_TRUE(ibe_.DecryptMany(params_, key, {}).empty());
  std::vector<BasicCiphertext> one = {cts[0]};
  EXPECT_EQ(ibe_.DecryptMany(params_, key, one)[0],
            ibe_.Decrypt(params_, key, cts[0]));
}

TEST_F(BfIbeTest, KemAgreesBothSides) {
  for (size_t key_len : {8u, 16u, 24u, 32u}) {
    IbeKem kem(ibe_.group(), key_len);
    Bytes id = BytesFromString("kem-recipient");
    KemOutput enc = kem.Encapsulate(params_, id, rng_);
    EXPECT_EQ(enc.key.size(), key_len);
    IbePrivateKey key = ibe_.Extract(master_, id);
    EXPECT_EQ(kem.Decapsulate(key, enc.u), enc.key);
  }
}

TEST_F(BfIbeTest, KemWrongIdentityDisagrees) {
  IbeKem kem(ibe_.group(), 16);
  KemOutput enc = kem.Encapsulate(params_, BytesFromString("right"), rng_);
  IbePrivateKey wrong = ibe_.Extract(master_, BytesFromString("wrong"));
  EXPECT_NE(kem.Decapsulate(wrong, enc.u), enc.key);
}

// --- Attributes ---

TEST(AttributeTest, ValidationGrammar) {
  EXPECT_TRUE(ValidateAttribute("ELECTRIC-BAYTOWER-SV-CA").ok());
  EXPECT_TRUE(ValidateAttribute("WATER_METER.CLASS2").ok());
  EXPECT_TRUE(ValidateAttribute("A").ok());
  EXPECT_FALSE(ValidateAttribute("").ok());
  EXPECT_FALSE(ValidateAttribute("lowercase").ok());
  EXPECT_FALSE(ValidateAttribute("HAS SPACE").ok());
  EXPECT_FALSE(ValidateAttribute("PIPE||INJECTION").ok());
  EXPECT_FALSE(ValidateAttribute(std::string(129, 'A')).ok());
  EXPECT_TRUE(ValidateAttribute(std::string(128, 'A')).ok());
}

TEST(AttributeTest, NonceFreshness) {
  DeterministicRandom rng(1);
  MessageNonce a = GenerateNonce(rng);
  MessageNonce b = GenerateNonce(rng);
  EXPECT_EQ(a.value.size(), 16u);
  EXPECT_FALSE(a == b);
}

TEST(AttributeTest, IdentityDerivationIsSha1OfConcat) {
  DeterministicRandom rng(2);
  MessageNonce nonce = GenerateNonce(rng);
  Bytes id = DeriveIdentity("ELECTRIC-APT-SV-CA", nonce);
  EXPECT_EQ(id.size(), 20u);  // SHA-1
  // Same inputs, same identity; any change flips it.
  EXPECT_EQ(id, DeriveIdentity("ELECTRIC-APT-SV-CA", nonce));
  EXPECT_NE(id, DeriveIdentity("ELECTRIC-APT-SV-CB", nonce));
  MessageNonce other = GenerateNonce(rng);
  EXPECT_NE(id, DeriveIdentity("ELECTRIC-APT-SV-CA", other));
}

TEST(AttributeTest, NoncePreventsKeyReuseAcrossMessages) {
  // The revocation mechanism: fresh nonce => fresh identity => fresh key.
  const auto& group = GetParams(ParamPreset::kSmall);
  BfIbe ibe(group);
  DeterministicRandom rng(3);
  auto [params, master] = ibe.Setup(rng);
  MessageNonce n1 = GenerateNonce(rng);
  MessageNonce n2 = GenerateNonce(rng);
  IbePrivateKey k1 = ibe.Extract(master, DeriveIdentity("A1", n1));
  IbePrivateKey k2 = ibe.Extract(master, DeriveIdentity("A1", n2));
  EXPECT_NE(k1.d, k2.d);
}

// --- Hybrid ---

class HybridTest : public ::testing::TestWithParam<crypto::CipherKind> {
 protected:
  HybridTest()
      : sealer_(GetParams(ParamPreset::kSmall), GetParam()),
        ibe_(GetParams(ParamPreset::kSmall)),
        rng_(77) {
    auto setup = ibe_.Setup(rng_);
    params_ = setup.first;
    master_ = setup.second;
  }

  HybridSealer sealer_;
  BfIbe ibe_;
  DeterministicRandom rng_;
  SystemParams params_;
  MasterKey master_;
};

TEST_P(HybridTest, SealOpenRoundTrip) {
  MessageNonce nonce = GenerateNonce(rng_);
  Bytes msg = BytesFromString(
      "meter=E-2201 kWh=13.37 voltage=229.9 events=none");
  auto ct = sealer_.Seal(params_, "ELECTRIC-APT-SV-CA", nonce, msg, rng_);
  ASSERT_TRUE(ct.ok()) << ct.status();
  IbePrivateKey key =
      ibe_.Extract(master_, DeriveIdentity("ELECTRIC-APT-SV-CA", nonce));
  auto back = sealer_.Open(key, ct.value());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), msg);
}

TEST_P(HybridTest, VariousMessageSizes) {
  MessageNonce nonce = GenerateNonce(rng_);
  IbePrivateKey key = ibe_.Extract(master_, DeriveIdentity("A", nonce));
  DeterministicRandom data_rng(5);
  for (size_t len : {0u, 1u, 8u, 100u, 4096u}) {
    Bytes msg = data_rng.Generate(len);
    auto ct = sealer_.Seal(params_, "A", nonce, msg, rng_);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(sealer_.Open(key, ct.value()).value(), msg);
  }
}

TEST_P(HybridTest, WrongNonceKeyCannotOpen) {
  MessageNonce n1 = GenerateNonce(rng_);
  MessageNonce n2 = GenerateNonce(rng_);
  Bytes msg = BytesFromString("for nonce n1 holders only, sixteen+");
  auto ct = sealer_.Seal(params_, "A", n1, msg, rng_);
  ASSERT_TRUE(ct.ok());
  IbePrivateKey wrong = ibe_.Extract(master_, DeriveIdentity("A", n2));
  auto result = sealer_.Open(wrong, ct.value());
  if (result.ok()) {
    EXPECT_NE(result.value(), msg);
  }
}

TEST_P(HybridTest, RejectsInvalidAttribute) {
  MessageNonce nonce = GenerateNonce(rng_);
  EXPECT_FALSE(
      sealer_.Seal(params_, "bad attr!", nonce, BytesFromString("m"), rng_)
          .ok());
}

INSTANTIATE_TEST_SUITE_P(AllDems, HybridTest,
                         ::testing::Values(crypto::CipherKind::kDes,
                                           crypto::CipherKind::kTripleDes,
                                           crypto::CipherKind::kAes128),
                         [](const ::testing::TestParamInfo<crypto::CipherKind>&
                                info) {
                           switch (info.param) {
                             case crypto::CipherKind::kDes:
                               return "Des";
                             case crypto::CipherKind::kTripleDes:
                               return "TripleDes";
                             case crypto::CipherKind::kAes128:
                               return "Aes128";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace mws::ibe
