// Deterministic mutation fuzzing of every wire::messages decoder: no
// input — truncated at any byte, bit-flipped, length-corrupted, or pure
// noise — may crash a decoder or yield a message that does not
// re-encode canonically. Seeded like wal_recovery_test.cc, so a failure
// reproduces exactly.
//
// Contract checked for each message type M and mutated input x:
//   * M::Decode(x) either fails with a clean Status or succeeds;
//   * on success, one Encode/Decode cycle reaches a fixpoint:
//     Decode(Encode(Decode(x))) succeeds and re-encodes identically.
//     (A fixpoint rather than Encode(Decode(x)) == x because decoders
//     may normalize — e.g. KeyBatchResponse reads any nonzero ok byte
//     as true but always writes 1.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/wire/messages.h"

namespace mws::wire {
namespace {

using util::Bytes;
using util::BytesFromString;

template <typename M>
void ExpectNormalizes(const Bytes& input, const char* label,
                      const char* mode) {
  auto decoded = M::Decode(input);
  if (!decoded.ok()) return;  // clean failure is always acceptable
  Bytes normalized = decoded->Encode();
  auto again = M::Decode(normalized);
  ASSERT_TRUE(again.ok()) << label << " " << mode
                          << ": normalized form failed to decode: "
                          << again.status();
  EXPECT_EQ(again->Encode(), normalized)
      << label << " " << mode << ": Encode/Decode is not a fixpoint";
}

template <typename M>
void FuzzDecoder(const M& sample, const char* label) {
  const Bytes encoded = sample.Encode();
  ASSERT_FALSE(encoded.empty()) << label;

  // The unmutated encoding must round-trip exactly.
  auto decoded = M::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << label << ": " << decoded.status();
  EXPECT_EQ(decoded->Encode(), encoded) << label;

  // Truncation at every byte offset.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes prefix(encoded.begin(), encoded.begin() + cut);
    ExpectNormalizes<M>(prefix, label, "truncation");
  }

  // Seeded random bit flips (1–3 bits per trial).
  util::DeterministicRandom rng(0xF00D + encoded.size());
  for (int trial = 0; trial < 256; ++trial) {
    Bytes mutated = encoded;
    const size_t flips = 1 + rng.NextU64() % 3;
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.NextU64() % mutated.size()] ^=
          static_cast<uint8_t>(1u << (rng.NextU64() % 8));
    }
    ExpectNormalizes<M>(mutated, label, "bitflip");
  }

  // Length-field corruption: stamp 0xFFFFFFFF over every 4-byte window.
  // A decoder must bounds-check before it trusts any length.
  for (size_t off = 0; off + 4 <= encoded.size(); ++off) {
    Bytes mutated = encoded;
    mutated[off] = mutated[off + 1] = mutated[off + 2] = mutated[off + 3] =
        0xFF;
    ExpectNormalizes<M>(mutated, label, "length-corruption");
  }

  // Pure seeded noise of assorted sizes.
  for (size_t size : {0u, 1u, 3u, 16u, 64u, 1024u}) {
    Bytes noise(size);
    for (auto& b : noise) b = static_cast<uint8_t>(rng.NextU64());
    ExpectNormalizes<M>(noise, label, "noise");
  }
}

TEST(WireFuzzTest, DepositRequest) {
  DepositRequest m;
  m.u = BytesFromString("serialized-point-rP");
  m.ciphertext = BytesFromString("ciphertext-C");
  m.attribute = "ELECTRIC-BAYTOWER-SV-CA";
  m.nonce = Bytes(16, 0xA5);
  m.device_id = "SD-0007";
  m.timestamp_micros = 1'267'401'600'000'000;
  m.mac = Bytes(32, 0x5A);
  FuzzDecoder(m, "DepositRequest");
}

TEST(WireFuzzTest, DepositResponse) {
  DepositResponse m;
  m.message_id = 0x0123456789ABCDEFull;
  FuzzDecoder(m, "DepositResponse");
}

TEST(WireFuzzTest, RcAuthRequest) {
  RcAuthRequest m;
  m.rc_identity = "C-SERVICES";
  m.rsa_public_key = BytesFromString("rsa-public-key-bytes");
  m.auth_ciphertext = Bytes(24, 0x3C);
  FuzzDecoder(m, "RcAuthRequest");
}

TEST(WireFuzzTest, RcAuthPlain) {
  RcAuthPlain m;
  m.rc_identity = "C-SERVICES";
  m.timestamp_micros = 1'000'000;
  m.client_nonce = Bytes(16, 0x77);
  FuzzDecoder(m, "RcAuthPlain");
}

TEST(WireFuzzTest, RcAuthResponse) {
  RcAuthResponse m;
  m.session_id = Bytes(16, 0x42);
  FuzzDecoder(m, "RcAuthResponse");
}

TEST(WireFuzzTest, RetrieveRequest) {
  RetrieveRequest m;
  m.session_id = Bytes(16, 0x42);
  m.after_message_id = 41;
  m.from_micros = 1'000;
  m.to_micros = 2'000;
  FuzzDecoder(m, "RetrieveRequest");
}

TEST(WireFuzzTest, RetrievedMessage) {
  RetrievedMessage m;
  m.message_id = 9;
  m.u = BytesFromString("rP");
  m.ciphertext = BytesFromString("C");
  m.aid = 3;
  m.nonce = Bytes(16, 0x01);
  FuzzDecoder(m, "RetrievedMessage");
}

TEST(WireFuzzTest, RetrieveResponse) {
  RetrievedMessage inner;
  inner.message_id = 9;
  inner.u = BytesFromString("rP");
  inner.ciphertext = BytesFromString("C");
  inner.aid = 3;
  inner.nonce = Bytes(16, 0x01);
  RetrieveResponse m;
  m.messages = {inner, inner};
  m.token = BytesFromString("rsa-sealed-token");
  FuzzDecoder(m, "RetrieveResponse");
}

TEST(WireFuzzTest, TicketPlain) {
  TicketPlain m;
  m.rc_identity = "WATER-RESOURCES-CO";
  m.session_key = Bytes(8, 0x88);
  m.aid_attributes = {{1, "WATER-BAYTOWER-SV-CA"}, {2, "GAS-BAYTOWER-SV-CA"}};
  m.expiry_micros = 5'000'000;
  FuzzDecoder(m, "TicketPlain");
}

TEST(WireFuzzTest, TokenPlain) {
  TokenPlain m;
  m.session_key = Bytes(8, 0x88);
  m.ticket = BytesFromString("opaque-encrypted-ticket");
  FuzzDecoder(m, "TokenPlain");
}

TEST(WireFuzzTest, AuthenticatorPlain) {
  AuthenticatorPlain m;
  m.rc_identity = "ELECTRIC-GAS-CO";
  m.timestamp_micros = 123'456'789;
  FuzzDecoder(m, "AuthenticatorPlain");
}

TEST(WireFuzzTest, PkgAuthRequest) {
  PkgAuthRequest m;
  m.rc_identity = "ELECTRIC-GAS-CO";
  m.ticket = BytesFromString("encrypted-ticket");
  m.authenticator = BytesFromString("encrypted-authenticator");
  FuzzDecoder(m, "PkgAuthRequest");
}

TEST(WireFuzzTest, PkgAuthResponse) {
  PkgAuthResponse m;
  m.session_id = Bytes(16, 0x9B);
  FuzzDecoder(m, "PkgAuthResponse");
}

TEST(WireFuzzTest, KeyRequest) {
  KeyRequest m;
  m.session_id = Bytes(16, 0x9B);
  m.aid = 7;
  m.nonce = Bytes(16, 0x11);
  FuzzDecoder(m, "KeyRequest");
}

TEST(WireFuzzTest, KeyResponse) {
  KeyResponse m;
  m.encrypted_private_key = Bytes(48, 0x6D);
  FuzzDecoder(m, "KeyResponse");
}

TEST(WireFuzzTest, KeyBatchRequest) {
  KeyBatchRequest m;
  m.session_id = Bytes(16, 0x9B);
  m.items = {{1, Bytes(16, 0x01)}, {2, Bytes(16, 0x02)}};
  FuzzDecoder(m, "KeyBatchRequest");
}

TEST(WireFuzzTest, KeyBatchResponse) {
  KeyBatchResponse m;
  m.items.push_back({true, BytesFromString("sealed-key")});
  m.items.push_back({false, BytesFromString("not found")});
  FuzzDecoder(m, "KeyBatchResponse");
}

TEST(WireFuzzTest, DepositBatchRequest) {
  DepositRequest item;
  item.u = BytesFromString("serialized-point-rP");
  item.ciphertext = BytesFromString("ciphertext-C");
  item.attribute = "ELECTRIC-BAYTOWER-SV-CA";
  item.nonce = Bytes(16, 0xA5);
  item.device_id = "SD-0007";
  item.timestamp_micros = 1'267'401'600'000'000;
  item.mac = Bytes(32, 0x5A);
  DepositBatchRequest m;
  m.items = {item, item};
  FuzzDecoder(m, "DepositBatchRequest");
}

TEST(WireFuzzTest, DepositBatchRequestRejectsZeroItems) {
  // An explicit zero-count frame is a protocol error, not an empty batch.
  DepositRequest item;
  item.attribute = "A";
  DepositBatchRequest m;
  m.items = {item};
  Bytes encoded = m.Encode();
  // version(1) | count(4) — zero the count and drop the item bytes.
  Bytes empty(encoded.begin(), encoded.begin() + 5);
  empty[1] = empty[2] = empty[3] = empty[4] = 0;
  auto decoded = DepositBatchRequest::Decode(empty);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireFuzzTest, DepositBatchRequestRejectsLengthBomb) {
  // A count far beyond the remaining bytes must fail before any
  // allocation sized by it.
  DepositRequest item;
  item.attribute = "A";
  DepositBatchRequest m;
  m.items = {item};
  Bytes encoded = m.Encode();
  encoded[1] = encoded[2] = encoded[3] = encoded[4] = 0xFF;
  EXPECT_FALSE(DepositBatchRequest::Decode(encoded).ok());
}

TEST(WireFuzzTest, DepositBatchResponse) {
  DepositBatchResponse m;
  m.items.push_back({true, 41, true, {}});
  m.items.push_back(
      {false, 0, false,
       EncodeWireError(util::Status::Unauthenticated("bad device MAC"))});
  FuzzDecoder(m, "DepositBatchResponse");
}

TEST(WireFuzzTest, RetrieveChunkRequest) {
  RetrieveChunkRequest m;
  m.session_id = Bytes(16, 0x42);
  m.after_message_id = 41;
  m.from_micros = 1'000;
  m.to_micros = 2'000;
  m.max_messages = 64;
  FuzzDecoder(m, "RetrieveChunkRequest");
}

TEST(WireFuzzTest, RetrieveChunkRequestRejectsZeroLimit) {
  RetrieveChunkRequest m;
  m.session_id = Bytes(16, 0x42);
  m.max_messages = 1;
  Bytes encoded = m.Encode();
  // max_messages is the trailing u32.
  for (size_t i = encoded.size() - 4; i < encoded.size(); ++i) encoded[i] = 0;
  EXPECT_FALSE(RetrieveChunkRequest::Decode(encoded).ok());
}

TEST(WireFuzzTest, RetrieveChunkResponse) {
  RetrievedMessage inner;
  inner.message_id = 9;
  inner.u = BytesFromString("rP");
  inner.ciphertext = BytesFromString("C");
  inner.aid = 3;
  inner.nonce = Bytes(16, 0x01);
  RetrieveChunkResponse m;
  m.messages = {inner, inner};
  m.has_more = true;
  m.next_after_id = 9;
  m.token = {};  // non-final chunk carries no token
  FuzzDecoder(m, "RetrieveChunkResponse");
  m.has_more = false;
  m.token = BytesFromString("rsa-sealed-token");
  FuzzDecoder(m, "RetrieveChunkResponse-final");
}

TEST(WireFuzzTest, PipelinedRequestFrame) {
  PipelinedRequestFrame m;
  m.correlation_id = 0x1122334455667788ull;
  m.endpoint = "mws.deposit";
  m.body = BytesFromString("opaque-request-body");
  FuzzDecoder(m, "PipelinedRequestFrame");
}

TEST(WireFuzzTest, PipelinedRequestFrameRejectsUnknownVersion) {
  PipelinedRequestFrame m;
  m.correlation_id = 7;
  m.endpoint = "mws.deposit";
  m.body = BytesFromString("body");
  Bytes encoded = m.Encode();
  encoded[2] = kPipelineVersion + 1;  // sentinel(2) | version(1)
  EXPECT_FALSE(PipelinedRequestFrame::Decode(encoded).ok());
}

TEST(WireFuzzTest, PipelinedResponseFrame) {
  PipelinedResponseFrame ok_frame;
  ok_frame.correlation_id = 99;
  ok_frame.ok = true;
  ok_frame.payload = BytesFromString("response-payload");
  FuzzDecoder(ok_frame, "PipelinedResponseFrame-ok");

  PipelinedResponseFrame err_frame;
  err_frame.correlation_id = 100;
  err_frame.ok = false;
  err_frame.payload =
      EncodeWireError(util::Status::ResourceExhausted("shed"));
  FuzzDecoder(err_frame, "PipelinedResponseFrame-err");
}

TEST(WireFuzzTest, PipelinedResponseFrameRejectsLegacyKinds) {
  // Kinds 0/1 are the legacy ok byte; a pipelined decoder must not
  // accept them (the disjoint ranges are what lets both framings share
  // a connection).
  PipelinedResponseFrame m;
  m.correlation_id = 1;
  m.ok = true;
  m.payload = BytesFromString("x");
  Bytes encoded = m.Encode();
  for (uint8_t kind : {0, 1, 4, 255}) {
    encoded[0] = kind;
    EXPECT_FALSE(PipelinedResponseFrame::Decode(encoded).ok())
        << "kind " << static_cast<int>(kind);
  }
}

TEST(WireFuzzTest, StatsRequest) {
  StatsRequest m;
  m.include_spans = 1;
  FuzzDecoder(m, "StatsRequest");
}

TEST(WireFuzzTest, StatsResponse) {
  StatsResponse m;
  m.registry_snapshot = BytesFromString("opaque-registry-snapshot");
  m.trace_snapshot = BytesFromString("opaque-span-list");
  FuzzDecoder(m, "StatsResponse");
}

TEST(WireFuzzTest, WireErrorDecodeNeverCrashes) {
  // DecodeWireError accepts anything (legacy plain-text payloads map to
  // kInternal), so the property is just "no crash, never OK" — an error
  // payload must stay an error.
  const Bytes encoded =
      EncodeWireError(util::Status::PermissionDenied("computer says no"));
  auto roundtrip = DecodeWireError(encoded);
  EXPECT_EQ(roundtrip.code(), util::StatusCode::kPermissionDenied);
  EXPECT_NE(roundtrip.message().find("computer says no"), std::string::npos);

  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes prefix(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(DecodeWireError(prefix).ok());
  }
  util::DeterministicRandom rng(4242);
  for (int trial = 0; trial < 256; ++trial) {
    Bytes mutated = encoded;
    mutated[rng.NextU64() % mutated.size()] ^=
        static_cast<uint8_t>(1u << (rng.NextU64() % 8));
    EXPECT_FALSE(DecodeWireError(mutated).ok());
  }
  for (size_t size : {0u, 1u, 2u, 7u, 64u}) {
    Bytes noise(size);
    for (auto& b : noise) b = static_cast<uint8_t>(rng.NextU64());
    EXPECT_FALSE(DecodeWireError(noise).ok());
  }
}

}  // namespace
}  // namespace mws::wire
