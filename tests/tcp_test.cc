// Tests the real-socket deployment shape: the full protocol running over
// TCP between client objects and MWS/PKG servers on loopback ports —
// the paper prototype's "four servers" arrangement.

#include <gtest/gtest.h>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/crypto/rsa.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/wire/auth.h"
#include "src/wire/tcp.h"

namespace mws::wire {
namespace {

using util::Bytes;
using util::BytesFromString;

TEST(TcpTransportTest, EchoRoundTrip) {
  InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = TcpServer::Start(&backend, 0);
  ASSERT_TRUE(server.ok()) << server.status();
  TcpClientTransport client("127.0.0.1", server.value()->port());
  auto response = client.Call("echo", BytesFromString("over the wire"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value(), BytesFromString("over the wire"));
}

TEST(TcpTransportTest, MultipleSequentialCallsOneConnection) {
  InProcessTransport backend;
  int counter = 0;
  backend.Register("count", [&](const Bytes&) -> util::Result<Bytes> {
    return BytesFromString(std::to_string(++counter));
  });
  auto server = TcpServer::Start(&backend, 0).value();
  TcpClientTransport client("127.0.0.1", server->port());
  for (int i = 1; i <= 10; ++i) {
    auto response = client.Call("count", {});
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(util::StringFromBytes(response.value()), std::to_string(i));
  }
}

TEST(TcpTransportTest, RemoteErrorsRelayed) {
  InProcessTransport backend;
  backend.Register("fail", [](const Bytes&) -> util::Result<Bytes> {
    return util::Status::PermissionDenied("computer says no");
  });
  auto server = TcpServer::Start(&backend, 0).value();
  TcpClientTransport client("127.0.0.1", server->port());
  auto response = client.Call("fail", {});
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("computer says no"),
            std::string::npos);
  // Unknown endpoint also comes back as an error, connection stays alive.
  EXPECT_FALSE(client.Call("missing", {}).ok());
  backend.Register("ok", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  EXPECT_TRUE(client.Call("ok", BytesFromString("still alive")).ok());
}

TEST(TcpTransportTest, ConnectionRefusedSurfaces) {
  TcpClientTransport client("127.0.0.1", 1);  // nothing listens on port 1
  auto response = client.Call("x", {});
  EXPECT_FALSE(response.ok());
}

TEST(TcpTransportTest, LargePayload) {
  InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = TcpServer::Start(&backend, 0).value();
  TcpClientTransport client("127.0.0.1", server->port());
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  auto response = client.Call("echo", big);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value(), big);
}

TEST(TcpTransportTest, ConcurrentClients) {
  InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = TcpServer::Start(&backend, 0).value();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      TcpClientTransport client("127.0.0.1", server->port());
      for (int i = 0; i < 25; ++i) {
        Bytes payload = BytesFromString("t" + std::to_string(t) + "-" +
                                        std::to_string(i));
        auto response = client.Call("echo", payload);
        if (!response.ok() || response.value() != payload) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

/// The paper's deployment: MWS and PKG as separate TCP servers, the
/// full three-phase protocol over real sockets.
TEST(TcpTransportTest, FullProtocolOverSockets) {
  util::SimulatedClock clock(1'000'000'000);
  util::DeterministicRandom rng(7);
  auto storage = store::KvStore::Open({.path = ""}).value();
  Bytes service_key(32, 0x3c);

  mws::MwsService warehouse(storage.get(), service_key, &clock, &rng);
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      service_key, &clock, &rng);

  // Two backends, two servers — MWS and PKG on their own ports.
  InProcessTransport mws_backend, pkg_backend;
  warehouse.RegisterEndpoints(&mws_backend);
  pkg.RegisterEndpoints(&pkg_backend);
  auto mws_server = TcpServer::Start(&mws_backend, 0).value();
  auto pkg_server = TcpServer::Start(&pkg_backend, 0).value();

  // A client-side mux routing mws.* and pkg.* to the right socket.
  TcpClientTransport mws_conn("127.0.0.1", mws_server->port());
  TcpClientTransport pkg_conn("127.0.0.1", pkg_server->port());
  class Mux : public Transport {
   public:
    Mux(Transport* mws, Transport* pkg) : mws_(mws), pkg_(pkg) {}
    util::Result<Bytes> Call(const std::string& endpoint,
                             const Bytes& request) override {
      if (endpoint.rfind("pkg.", 0) == 0) return pkg_->Call(endpoint, request);
      return mws_->Call(endpoint, request);
    }

   private:
    Transport* mws_;
    Transport* pkg_;
  } mux(&mws_conn, &pkg_conn);

  // Registration and policy.
  Bytes mac_key(32, 0x11);
  ASSERT_TRUE(warehouse.RegisterDevice("SD-1", mac_key).ok());
  auto keys = crypto::RsaGenerateKeyPair(768, rng).value();
  ASSERT_TRUE(warehouse
                  .RegisterReceivingClient(
                      "RC-1", HashPassword("pw"),
                      crypto::SerializeRsaPublicKey(keys.public_key))
                  .ok());
  ASSERT_TRUE(warehouse.GrantAttribute("RC-1", "ELECTRIC-TCP-TEST").ok());

  // Protocol over the wire.
  client::SmartDevice device("SD-1", mac_key, pkg.PublicParams(),
                             crypto::CipherKind::kDes, &mux, &clock, &rng);
  auto id = device.DepositMessage("ELECTRIC-TCP-TEST",
                                  BytesFromString("kWh=2.5 over tcp"));
  ASSERT_TRUE(id.ok()) << id.status();

  client::ReceivingClient rc("RC-1", "pw", std::move(keys),
                             pkg.PublicParams(), crypto::CipherKind::kDes,
                             crypto::CipherKind::kDes, &mux, &clock, &rng);
  auto messages = rc.FetchAndDecrypt();
  ASSERT_TRUE(messages.ok()) << messages.status();
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ(util::StringFromBytes(messages->at(0).plaintext),
            "kWh=2.5 over tcp");
}

}  // namespace
}  // namespace mws::wire
