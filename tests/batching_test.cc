// Equivalence and concurrency tests for the batch data plane (E17):
// DepositBatch / DepositMany, chunked retrieval, DecryptAll, and the
// pipelined TCP transport. The load-bearing property everywhere is
// *bit-identical equivalence*: the batch paths must produce exactly the
// records and plaintexts of N single-shot calls, including under dedup
// replay and fault-injection interleavings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/scenario.h"
#include "src/wire/pipeline.h"
#include "src/wire/retry.h"
#include "src/wire/tcp.h"

namespace mws {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::StringFromBytes;

sim::UtilityScenario::Options SmallOptions() {
  sim::UtilityScenario::Options options;
  options.preset = math::ParamPreset::kSmall;
  options.devices_per_class = 1;
  return options;
}

/// Every stored message of the scenario's warehouse, encoded, in id
/// order — the "bit-identical records" witness.
std::vector<Bytes> DumpWarehouse(sim::UtilityScenario& scenario) {
  const store::MessageDb& db = scenario.mws().message_db();
  std::vector<Bytes> out;
  for (const std::string& attribute : db.DistinctAttributes()) {
    auto messages = db.FindByAttribute(attribute);
    EXPECT_TRUE(messages.ok()) << messages.status();
    for (const store::StoredMessage& m : messages.value()) {
      out.push_back(m.Encode());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The retrieve-layer view for one company: every RetrievedMessage,
/// encoded. RetrievedMessage carries id, u, ciphertext, aid, and nonce
/// but no deposit timestamp, so this compares everything the batch path
/// must preserve bit-for-bit while ignoring send-time stamps (a buffered
/// batch is legitimately stamped when the device drains its buffer, and
/// retry backoff advances the simulated clock).
std::vector<Bytes> DumpRetrieved(sim::UtilityScenario& scenario) {
  client::ReceivingClient& rc =
      scenario.company(sim::UtilityScenario::kCServices);
  EXPECT_TRUE(rc.Authenticate().ok());
  auto response = rc.Retrieve();
  EXPECT_TRUE(response.ok()) << response.status();
  std::vector<Bytes> out;
  for (const wire::RetrievedMessage& m : response.value().messages) {
    out.push_back(m.Encode());
  }
  return out;
}

// ---------------------------------------------------------------------
// DepositBatch equivalence

TEST(BatchDepositTest, BatchStoresBitIdenticalRecordsForSameRequests) {
  // Same seed, same requests: scenario A deposits them one by one,
  // scenario B ships the identical requests as one DepositBatch. The
  // stored records — ids, index entries, ciphertexts, MAC-covered
  // fields — must be byte-for-byte equal.
  auto single = sim::UtilityScenario::Create(SmallOptions()).value();
  auto batched = sim::UtilityScenario::Create(SmallOptions()).value();

  constexpr int kMessages = 6;
  wire::DepositBatchRequest batch;
  for (int i = 0; i < kMessages; ++i) {
    const Bytes payload = BytesFromString("payload-" + std::to_string(i));
    auto a = single->devices().front().BuildDeposit(
        sim::UtilityScenario::kElectricAttr, payload);
    ASSERT_TRUE(a.ok()) << a.status();
    auto b = batched->devices().front().BuildDeposit(
        sim::UtilityScenario::kElectricAttr, payload);
    ASSERT_TRUE(b.ok()) << b.status();
    // Same seed, same draws: the two scenarios built identical requests.
    ASSERT_EQ(a.value().Encode(), b.value().Encode());
    ASSERT_TRUE(single->mws().Deposit(a.value()).ok());
    batch.items.push_back(std::move(b).value());
  }
  auto response = batched->mws().DepositBatch(batch);
  ASSERT_TRUE(response.ok()) << response.status();
  for (const auto& item : response->items) ASSERT_TRUE(item.ok);

  EXPECT_EQ(DumpWarehouse(*single), DumpWarehouse(*batched));
}

TEST(BatchDepositTest, BatchFlowMatchesSequentialFlowEndToEnd) {
  // The scenario-level flows: every device either deposits readings one
  // by one or buffers them into a DepositMany batch. Ids, ciphertexts,
  // and decryptable content must match exactly; only the deposit
  // timestamps differ (batch items share the drain time).
  auto sequential = sim::UtilityScenario::Create(SmallOptions());
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto batched = sim::UtilityScenario::Create(SmallOptions());
  ASSERT_TRUE(batched.ok()) << batched.status();

  auto n_seq = sequential.value()->DepositReadings(4);
  ASSERT_TRUE(n_seq.ok()) << n_seq.status();
  auto n_batch = batched.value()->DepositReadingsBatch(4);
  ASSERT_TRUE(n_batch.ok()) << n_batch.status();
  EXPECT_EQ(n_seq.value(), n_batch.value());

  EXPECT_EQ(DumpRetrieved(*sequential.value()),
            DumpRetrieved(*batched.value()));
}

TEST(BatchDepositTest, PerItemIdsMatchSequentialAssignment) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  client::SmartDevice& device = scenario->devices().front();
  std::vector<std::pair<ibe::Attribute, Bytes>> readings;
  for (int i = 0; i < 5; ++i) {
    readings.emplace_back(sim::UtilityScenario::kElectricAttr,
                          BytesFromString("reading-" + std::to_string(i)));
  }
  auto outcomes = device.DepositMany(readings);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status();
  ASSERT_EQ(outcomes->size(), readings.size());
  uint64_t expected = 1;
  for (const auto& outcome : outcomes.value()) {
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome.value(), expected++);
  }
  EXPECT_EQ(device.deposits_sent(), readings.size());
}

TEST(BatchDepositTest, ReplayedBatchDeduplicates) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  client::SmartDevice& device = scenario->devices().front();

  wire::DepositBatchRequest batch;
  for (int i = 0; i < 3; ++i) {
    auto request = device.BuildDeposit(sim::UtilityScenario::kElectricAttr,
                                       BytesFromString("r"));
    ASSERT_TRUE(request.ok()) << request.status();
    batch.items.push_back(std::move(request).value());
  }
  auto first = scenario->mws().DepositBatch(batch);
  ASSERT_TRUE(first.ok()) << first.status();
  std::vector<Bytes> records = DumpWarehouse(*scenario);

  // A device whose ack was lost retransmits the identical batch: every
  // item must come back with its original id and nothing new stored.
  auto replay = scenario->mws().DepositBatch(batch);
  ASSERT_TRUE(replay.ok()) << replay.status();
  for (size_t i = 0; i < batch.items.size(); ++i) {
    ASSERT_TRUE(replay->items[i].ok);
    EXPECT_EQ(replay->items[i].message_id, first->items[i].message_id);
  }
  EXPECT_EQ(DumpWarehouse(*scenario), records);
  EXPECT_GE(scenario->mws().message_db().dedup_hits(), batch.items.size());
}

TEST(BatchDepositTest, IntraBatchDuplicateResolvesToFirstOccurrence) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  client::SmartDevice& device = scenario->devices().front();
  auto request = device.BuildDeposit(sim::UtilityScenario::kElectricAttr,
                                     BytesFromString("r"));
  ASSERT_TRUE(request.ok()) << request.status();

  wire::DepositBatchRequest batch;
  batch.items.push_back(request.value());
  batch.items.push_back(request.value());  // same (device, nonce)
  auto response = scenario->mws().DepositBatch(batch);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->items[0].ok);
  ASSERT_TRUE(response->items[1].ok);
  EXPECT_EQ(response->items[0].message_id, response->items[1].message_id);
  EXPECT_EQ(scenario->mws().message_db().Count(), 1u);
}

TEST(BatchDepositTest, BadMacRejectsThatItemOnly) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  client::SmartDevice& device = scenario->devices().front();

  wire::DepositBatchRequest batch;
  for (int i = 0; i < 3; ++i) {
    batch.items.push_back(
        device
            .BuildDeposit(sim::UtilityScenario::kElectricAttr,
                          BytesFromString("r" + std::to_string(i)))
            .value());
  }
  batch.items[1].mac[0] ^= 0xFF;
  auto response = scenario->mws().DepositBatch(batch);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->items[0].ok);
  ASSERT_FALSE(response->items[1].ok);
  EXPECT_EQ(wire::DecodeWireError(response->items[1].error).code(),
            util::StatusCode::kUnauthenticated);
  EXPECT_TRUE(response->items[2].ok);
  EXPECT_EQ(scenario->mws().message_db().Count(), 2u);
}

TEST(BatchDepositTest, ConcurrentBatchesAssignDisjointIds) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  client::SmartDevice& device = scenario->devices().front();

  // Build every request up front (BuildDeposit shares the scenario rng,
  // which is not the unit under test); dispatch the batches in parallel.
  constexpr int kBatches = 4;
  constexpr int kPerBatch = 8;
  std::vector<wire::DepositBatchRequest> batches(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < kPerBatch; ++i) {
      batches[b].items.push_back(
          device
              .BuildDeposit(sim::UtilityScenario::kElectricAttr,
                            BytesFromString("r"))
              .value());
    }
  }
  std::vector<std::thread> threads;
  std::vector<util::Result<wire::DepositBatchResponse>> responses(
      kBatches, util::Status::Internal("unset"));
  for (int b = 0; b < kBatches; ++b) {
    threads.emplace_back([&, b] {
      responses[b] = scenario->mws().DepositBatch(batches[b]);
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<uint64_t> ids;
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
    for (const auto& item : response.value().items) {
      ASSERT_TRUE(item.ok);
      ids.push_back(item.message_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "duplicate id assigned across concurrent batches";
  EXPECT_EQ(scenario->mws().message_db().Count(),
            static_cast<size_t>(kBatches * kPerBatch));
}

TEST(BatchDepositTest, FaultyTransportReplaysAreAbsorbed) {
  // Response drops force the retry layer to retransmit whole batches;
  // the dedup markers must keep the warehouse byte-identical to a
  // fault-free run of the same requests, stored exactly once.
  sim::UtilityScenario::Options options = SmallOptions();
  options.resilience.enable = true;
  options.resilience.response_drop_rate = 0.3;
  auto faulty_or = sim::UtilityScenario::Create(options);
  ASSERT_TRUE(faulty_or.ok()) << faulty_or.status();
  sim::UtilityScenario& faulty = *faulty_or.value();
  auto clean = sim::UtilityScenario::Create(SmallOptions()).value();

  // Same seed, same draws: both worlds build identical batches up front
  // (retry backoff advances the simulated clock, so anything clock-
  // stamped after the first drop would legitimately diverge).
  wire::DepositBatchRequest faulty_batch;
  wire::DepositBatchRequest clean_batch;
  for (int i = 0; i < 6; ++i) {
    const Bytes payload = BytesFromString("reading-" + std::to_string(i));
    faulty_batch.items.push_back(
        faulty.devices()
            .front()
            .BuildDeposit(sim::UtilityScenario::kElectricAttr, payload)
            .value());
    clean_batch.items.push_back(
        clean->devices()
            .front()
            .BuildDeposit(sim::UtilityScenario::kElectricAttr, payload)
            .value());
    ASSERT_EQ(faulty_batch.items.back().Encode(),
              clean_batch.items.back().Encode());
  }
  ASSERT_TRUE(clean->mws().DepositBatch(clean_batch).ok());

  // Ship the batch through the drop/retry chain several times — an
  // at-least-once client whose acks keep vanishing. Every round must
  // come back fully acknowledged with the original ids.
  const Bytes encoded = faulty_batch.Encode();
  for (int round = 0; round < 3; ++round) {
    auto response =
        faulty.client_transport().Call("mws.deposit_batch", encoded);
    ASSERT_TRUE(response.ok()) << "round " << round << ": "
                               << response.status();
    auto decoded = wire::DepositBatchResponse::Decode(response.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    for (size_t i = 0; i < decoded->items.size(); ++i) {
      ASSERT_TRUE(decoded->items[i].ok);
      EXPECT_EQ(decoded->items[i].message_id, i + 1);
    }
  }

  EXPECT_EQ(DumpWarehouse(faulty), DumpWarehouse(*clean));
  EXPECT_GE(faulty.mws().message_db().dedup_hits(),
            2 * faulty_batch.items.size());
}

// ---------------------------------------------------------------------
// Chunked retrieval + DecryptAll equivalence

TEST(BulkRetrieveTest, ChunkedRetrieveMatchesFullRetrieve) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  ASSERT_TRUE(scenario->DepositReadings(5).ok());

  client::ReceivingClient& rc =
      scenario->company(sim::UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto full = rc.Retrieve();
  ASSERT_TRUE(full.ok()) << full.status();
  auto chunked = rc.RetrieveChunked(/*after_id=*/0, 0, 0, /*chunk_size=*/4);
  ASSERT_TRUE(chunked.ok()) << chunked.status();

  ASSERT_EQ(chunked->messages.size(), full->messages.size());
  for (size_t i = 0; i < full->messages.size(); ++i) {
    EXPECT_EQ(chunked->messages[i].Encode(), full->messages[i].Encode());
  }
  EXPECT_FALSE(chunked->token.empty());
}

TEST(BulkRetrieveTest, TokenOnlyOnFinalChunk) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  ASSERT_TRUE(scenario->DepositReadings(5).ok());

  client::ReceivingClient& rc =
      scenario->company(sim::UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  uint64_t cursor = 0;
  size_t chunks = 0;
  for (;;) {
    auto chunk = rc.RetrieveChunk(cursor, 0, 0, /*max_messages=*/4);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    ++chunks;
    if (chunk->has_more) {
      EXPECT_TRUE(chunk->token.empty());
      EXPECT_EQ(chunk->messages.size(), 4u);
      ASSERT_GT(chunk->next_after_id, cursor) << "cursor must advance";
      cursor = chunk->next_after_id;
    } else {
      EXPECT_FALSE(chunk->token.empty());
      break;
    }
  }
  EXPECT_GT(chunks, 1u) << "test should span several chunks";
}

TEST(BulkRetrieveTest, DecryptAllBitIdenticalToPerMessageDecryption) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  ASSERT_TRUE(scenario->DepositReadings(4).ok());

  client::ReceivingClient& rc =
      scenario->company(sim::UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto retrieved = rc.Retrieve();
  ASSERT_TRUE(retrieved.ok()) << retrieved.status();
  ASSERT_TRUE(rc.AuthenticateWithPkg(retrieved->token).ok());

  // Reference: one key request + one decryption per message.
  std::vector<Bytes> reference;
  for (const wire::RetrievedMessage& m : retrieved->messages) {
    auto key = rc.RequestKey(m.aid, m.nonce);
    ASSERT_TRUE(key.ok()) << key.status();
    auto plain = rc.DecryptMessage(m, key.value());
    ASSERT_TRUE(plain.ok()) << plain.status();
    reference.push_back(std::move(plain).value());
  }

  auto bulk = rc.DecryptAll(retrieved->messages);
  ASSERT_TRUE(bulk.ok()) << bulk.status();
  ASSERT_EQ(bulk->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(bulk.value()[i].message_id, retrieved->messages[i].message_id);
    EXPECT_EQ(bulk.value()[i].plaintext, reference[i]);
  }
}

TEST(BulkRetrieveTest, DecryptAllSharesPrecompAcrossRepeatedKeys) {
  // Duplicate retrieved records (same AID+nonce => same key) force the
  // shared-PairingPrecomp group path; plaintexts must stay identical.
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  ASSERT_TRUE(scenario->DepositReadings(2).ok());

  client::ReceivingClient& rc =
      scenario->company(sim::UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto retrieved = rc.Retrieve();
  ASSERT_TRUE(retrieved.ok()) << retrieved.status();
  ASSERT_TRUE(rc.AuthenticateWithPkg(retrieved->token).ok());

  std::vector<wire::RetrievedMessage> doubled = retrieved->messages;
  doubled.insert(doubled.end(), retrieved->messages.begin(),
                 retrieved->messages.end());
  auto bulk = rc.DecryptAll(doubled);
  ASSERT_TRUE(bulk.ok()) << bulk.status();
  ASSERT_EQ(bulk->size(), doubled.size());
  const size_t half = retrieved->messages.size();
  for (size_t i = 0; i < half; ++i) {
    EXPECT_EQ(bulk.value()[i].plaintext, bulk.value()[i + half].plaintext);
  }
}

TEST(BulkRetrieveTest, FetchAndDecryptBulkMatchesFetchAndDecrypt) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  ASSERT_TRUE(scenario->DepositReadingsBatch(4).ok());

  auto single = scenario->RetrieveFor(sim::UtilityScenario::kElectricGas);
  ASSERT_TRUE(single.ok()) << single.status();
  auto bulk = scenario->RetrieveBulkFor(sim::UtilityScenario::kElectricGas,
                                        /*after_id=*/0, /*chunk_size=*/3);
  ASSERT_TRUE(bulk.ok()) << bulk.status();

  ASSERT_EQ(bulk->size(), single->size());
  ASSERT_GT(bulk->size(), 0u);
  for (size_t i = 0; i < single->size(); ++i) {
    EXPECT_EQ(bulk.value()[i].message_id, single.value()[i].message_id);
    EXPECT_EQ(bulk.value()[i].aid, single.value()[i].aid);
    EXPECT_EQ(bulk.value()[i].plaintext, single.value()[i].plaintext);
  }
}

// ---------------------------------------------------------------------
// Pipelined transport

TEST(PipelinedTransportTest, EchoRoundTrip) {
  wire::InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = wire::TcpServer::Start(&backend, 0).value();
  wire::PipelinedTcpClientTransport client("127.0.0.1", server->port());
  auto response = client.Call("echo", BytesFromString("pipelined"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value(), BytesFromString("pipelined"));
}

TEST(PipelinedTransportTest, CallPipelinedPreservesRequestOrder) {
  wire::InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = wire::TcpServer::Start(&backend, 0).value();
  wire::PipelinedTcpClientTransport client("127.0.0.1", server->port());

  std::vector<Bytes> requests;
  for (int i = 0; i < 100; ++i) {
    requests.push_back(BytesFromString("req-" + std::to_string(i)));
  }
  auto results = client.CallPipelined("echo", requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].status();
    EXPECT_EQ(results[i].value(), requests[i]);
  }
}

TEST(PipelinedTransportTest, ConcurrentCallersShareOneConnection) {
  wire::InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = wire::TcpServer::Start(&backend, 0).value();
  wire::PipelinedTcpClientTransport client("127.0.0.1", server->port());

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        Bytes payload =
            BytesFromString(std::to_string(t) + ":" + std::to_string(i));
        auto response = client.Call("echo", payload);
        if (!response.ok() || response.value() != payload) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client.reconnects(), 0u);
}

TEST(PipelinedTransportTest, ServerErrorsRelayedPerRequest) {
  wire::InProcessTransport backend;
  backend.Register("flaky", [](const Bytes& b) -> util::Result<Bytes> {
    if (!b.empty() && b[0] == 1) {
      return util::Status::PermissionDenied("computer says no");
    }
    return b;
  });
  auto server = wire::TcpServer::Start(&backend, 0).value();
  wire::PipelinedTcpClientTransport client("127.0.0.1", server->port());

  std::vector<Bytes> requests = {Bytes{0}, Bytes{1}, Bytes{0}};
  auto results = client.CallPipelined("flaky", requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), util::StatusCode::kPermissionDenied);
  EXPECT_TRUE(results[2].ok());
}

TEST(PipelinedTransportTest, ComposesUnderRetryingTransport) {
  wire::InProcessTransport backend;
  std::atomic<int> calls{0};
  backend.Register("flaky-once", [&](const Bytes& b) -> util::Result<Bytes> {
    if (calls.fetch_add(1) == 0) {
      return util::Status::Unavailable("warming up");
    }
    return b;
  });
  auto server = wire::TcpServer::Start(&backend, 0).value();
  wire::PipelinedTcpClientTransport base("127.0.0.1", server->port());
  util::SystemClock clock;
  wire::RetryOptions retry_options;
  retry_options.initial_backoff_micros = 1'000;
  wire::RetryingTransport retrying(&base, &clock, retry_options);
  retrying.set_sleep_fn([](int64_t) {});

  auto response = retrying.Call("flaky-once", BytesFromString("payload"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value(), BytesFromString("payload"));
  EXPECT_EQ(calls.load(), 2);
}

TEST(PipelinedTransportTest, ConnectionRefusedSurfacesRetryably) {
  wire::PipelinedTcpClientTransport client("127.0.0.1", 1);
  auto response = client.Call("x", {});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), util::StatusCode::kUnavailable);
}

TEST(PipelinedTransportTest, ReconnectsAfterServerRestart) {
  wire::InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto first = wire::TcpServer::Start(&backend, 0).value();
  const uint16_t port = first->port();
  wire::PipelinedTcpClientTransport client("127.0.0.1", port);
  ASSERT_TRUE(client.Call("echo", BytesFromString("a")).ok());

  first->Shutdown();
  first.reset();
  // The in-flight-free connection is now dead; the next call may fail
  // once (retryably) while the reader notices, then reconnect.
  auto second = wire::TcpServer::Start(&backend, port);
  ASSERT_TRUE(second.ok()) << second.status();
  bool recovered = false;
  for (int attempt = 0; attempt < 10 && !recovered; ++attempt) {
    recovered = client.Call("echo", BytesFromString("b")).ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(client.reconnects(), 1u);
}

/// A hand-rolled one-connection server speaking the pipelined framing,
/// for wire-level misbehavior the real server never produces.
class RawPipelineServer {
 public:
  RawPipelineServer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(listen_fd_, 1);
  }
  ~RawPipelineServer() {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  /// Blocks for the next pipelined request frame; returns its
  /// correlation id.
  uint64_t ReadRequest() {
    if (conn_fd_ < 0) conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    EXPECT_GE(conn_fd_, 0);
    uint8_t pre[11];  // sentinel(2) version(1) correlation(8)
    ReadFull(pre, sizeof(pre));
    EXPECT_EQ(pre[0], 0xFF);
    EXPECT_EQ(pre[1], 0xFF);
    uint64_t correlation_id = 0;
    for (int i = 0; i < 8; ++i) {
      correlation_id = (correlation_id << 8) | pre[3 + i];
    }
    uint8_t elen_bytes[2];
    ReadFull(elen_bytes, 2);
    size_t elen = (static_cast<size_t>(elen_bytes[0]) << 8) | elen_bytes[1];
    std::vector<uint8_t> skip(elen);
    ReadFull(skip.data(), elen);
    uint8_t blen_bytes[4];
    ReadFull(blen_bytes, 4);
    size_t blen = (static_cast<size_t>(blen_bytes[0]) << 24) |
                  (static_cast<size_t>(blen_bytes[1]) << 16) |
                  (static_cast<size_t>(blen_bytes[2]) << 8) | blen_bytes[3];
    skip.resize(blen);
    ReadFull(skip.data(), blen);
    return correlation_id;
  }

  void WriteResponse(uint64_t correlation_id, const Bytes& payload) {
    std::vector<uint8_t> frame;
    frame.push_back(2);  // kPipelineOk
    for (int i = 7; i >= 0; --i) {
      frame.push_back(static_cast<uint8_t>(correlation_id >> (8 * i)));
    }
    for (int i = 3; i >= 0; --i) {
      frame.push_back(static_cast<uint8_t>(payload.size() >> (8 * i)));
    }
    frame.insert(frame.end(), payload.begin(), payload.end());
    ASSERT_EQ(::send(conn_fd_, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
  }

 private:
  void ReadFull(uint8_t* out, size_t len) {
    size_t done = 0;
    while (done < len) {
      ssize_t n = ::read(conn_fd_, out + done, len - done);
      ASSERT_GT(n, 0);
      done += static_cast<size_t>(n);
    }
  }

  int listen_fd_ = -1;
  int conn_fd_ = -1;
  uint16_t port_ = 0;
};

TEST(PipelinedTransportTest, DuplicateCorrelationIdDroppedWithoutDesync) {
  RawPipelineServer server;
  std::thread misbehave([&server] {
    uint64_t first = server.ReadRequest();
    server.WriteResponse(first, BytesFromString("answer-1"));
    // A confused server repeats the same correlation id: the client has
    // already completed that slot and must discard the frame while
    // staying in sync for the next one.
    server.WriteResponse(first, BytesFromString("stale-duplicate"));
    uint64_t second = server.ReadRequest();
    server.WriteResponse(second, BytesFromString("answer-2"));
  });

  wire::PipelinedTcpClientTransport client("127.0.0.1", server.port());
  auto first = client.Call("x", BytesFromString("a"));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(StringFromBytes(first.value()), "answer-1");
  auto second = client.Call("x", BytesFromString("b"));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(StringFromBytes(second.value()), "answer-2");
  EXPECT_EQ(client.reconnects(), 0u);
  misbehave.join();
}

TEST(PipelinedTransportTest, LegacyAndPipelinedClientsShareServer) {
  wire::InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = wire::TcpServer::Start(&backend, 0).value();
  wire::TcpClientTransport legacy("127.0.0.1", server->port());
  wire::PipelinedTcpClientTransport pipelined("127.0.0.1", server->port());
  for (int i = 0; i < 5; ++i) {
    auto a = legacy.Call("echo", BytesFromString("legacy-" + std::to_string(i)));
    ASSERT_TRUE(a.ok()) << a.status();
    auto b =
        pipelined.Call("echo", BytesFromString("pipe-" + std::to_string(i)));
    ASSERT_TRUE(b.ok()) << b.status();
  }
}

// End-to-end over real sockets: batch deposit and bulk retrieve through
// the pipelined transport against a TcpServer-fronted MWS+PKG.
TEST(PipelinedTransportTest, BatchProtocolEndToEndOverTcp) {
  auto scenario = sim::UtilityScenario::Create(SmallOptions()).value();
  auto server = wire::TcpServer::Start(&scenario->transport(), 0).value();
  wire::PipelinedTcpClientTransport transport("127.0.0.1", server->port());

  // A device built over the pipelined transport, registered out of band.
  client::SmartDevice device(
      "SD-TCP-1", BytesFromString("tcp-device-mac-key"),
      scenario->pkg().PublicParams(), scenario->options().dem, &transport,
      &scenario->clock(), &scenario->rng());
  ASSERT_TRUE(scenario->mws()
                  .RegisterDevice("SD-TCP-1",
                                  BytesFromString("tcp-device-mac-key"))
                  .ok());
  std::vector<std::pair<ibe::Attribute, Bytes>> readings;
  for (int i = 0; i < 6; ++i) {
    readings.emplace_back(sim::UtilityScenario::kElectricAttr,
                          BytesFromString("tcp-reading-" + std::to_string(i)));
  }
  auto outcomes = device.DepositMany(readings);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status();
  for (const auto& outcome : outcomes.value()) {
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }

  client::ReceivingClient rc(
      sim::UtilityScenario::kCServices,
      std::string("pw-") + sim::UtilityScenario::kCServices,
      crypto::RsaGenerateKeyPair(scenario->options().rsa_bits,
                                 scenario->rng())
          .value(),
      scenario->pkg().PublicParams(), scenario->options().cipher,
      scenario->options().dem, &transport, &scenario->clock(),
      &scenario->rng());
  auto received = rc.FetchAndDecryptBulk(/*after_id=*/0, 0, 0,
                                         /*chunk_size=*/4);
  ASSERT_TRUE(received.ok()) << received.status();
  EXPECT_EQ(received->size(), readings.size());
  for (size_t i = 0; i < received->size(); ++i) {
    EXPECT_EQ(StringFromBytes(received.value()[i].plaintext),
              "tcp-reading-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace mws
