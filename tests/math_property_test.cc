// Cross-preset property sweeps over the math substrate: field edge
// cases near the modulus, inversion corner cases, point serialization,
// and group-law consistency at every parameter strength.

#include <gtest/gtest.h>

#include "src/math/params.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

class MathPresetTest : public ::testing::TestWithParam<ParamPreset> {
 protected:
  const TypeAParams& P() { return GetParams(GetParam()); }
};

TEST_P(MathPresetTest, FieldEdgeValues) {
  const FpCtx* ctx = P().ctx();
  const BigInt& p = P().p();
  // 0, 1, p-1, p, p+1 all behave.
  Fp zero = Fp::FromBigInt(ctx, BigInt(0));
  Fp one = Fp::FromBigInt(ctx, BigInt(1));
  Fp pm1 = Fp::FromBigInt(ctx, p - BigInt(1));
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(one.IsOne());
  EXPECT_TRUE(Fp::FromBigInt(ctx, p).IsZero());
  EXPECT_TRUE(Fp::FromBigInt(ctx, p + BigInt(1)).IsOne());
  // (p-1) == -1: squares to 1, adds with 1 to 0.
  EXPECT_TRUE(pm1.Sqr().IsOne());
  EXPECT_TRUE((pm1 + one).IsZero());
  EXPECT_EQ(pm1.Neg(), one);
  // Inversions at the corners.
  EXPECT_TRUE(one.Inv().IsOne());
  EXPECT_EQ(pm1.Inv(), pm1);  // (-1)^-1 == -1
}

TEST_P(MathPresetTest, InversionSweep) {
  const FpCtx* ctx = P().ctx();
  DeterministicRandom rng(42);
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, P().p()));
    if (a.IsZero()) continue;
    EXPECT_TRUE((a * a.Inv()).IsOne());
    EXPECT_EQ(a.Inv().Inv(), a);
  }
  // Powers of two (sparse limb patterns stress the binary GCD).
  for (size_t shift : {1u, 63u, 64u, 65u, 127u}) {
    if (shift >= P().p().BitLength()) continue;
    Fp a = Fp::FromBigInt(ctx, BigInt(1) << shift);
    EXPECT_TRUE((a * a.Inv()).IsOne()) << shift;
  }
}

TEST_P(MathPresetTest, PointSerializationSweep) {
  DeterministicRandom rng(7);
  for (int i = 0; i < 5; ++i) {
    EcPoint point = P().RandomPoint(rng);
    auto bytes = P().curve().Serialize(point);
    EXPECT_EQ(bytes.size(), P().PointBytes());
    EXPECT_EQ(P().curve().Deserialize(bytes).value(), point);
  }
}

TEST_P(MathPresetTest, GroupLawsOnRandomPoints) {
  DeterministicRandom rng(9);
  EcPoint a = P().RandomPoint(rng);
  EcPoint b = P().RandomPoint(rng);
  EcPoint c = P().RandomPoint(rng);
  const CurveGroup& curve = P().curve();
  EXPECT_EQ(curve.Add(a, b), curve.Add(b, a));
  EXPECT_EQ(curve.Add(curve.Add(a, b), c), curve.Add(a, curve.Add(b, c)));
  EXPECT_EQ(curve.Add(a, curve.Negate(a)), EcPoint::Infinity());
  EXPECT_TRUE(curve.IsOnCurve(curve.Add(a, b)));
}

TEST_P(MathPresetTest, LazyFp2KernelsMatchReferenceSweep) {
  // The lazy-reduction F_p2 multiply/square (one Montgomery reduction
  // per output coefficient, MontMulAcc2 chains) must be bit-identical
  // to the per-product-reduction reference formulas at every preset
  // limb count: both produce canonical residues.
  const FpCtx* ctx = P().ctx();
  DeterministicRandom rng(12);
  auto random_fp2 = [&] {
    return Fp2(Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, P().p())),
               Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, P().p())));
  };
  std::vector<Fp2> edge = {
      Fp2::Zero(ctx),
      Fp2::One(ctx),
      Fp2(Fp::Zero(ctx), Fp::One(ctx)),                      // i
      Fp2(Fp::FromBigInt(ctx, P().p() - BigInt(1)),          // -1 - i
          Fp::FromBigInt(ctx, P().p() - BigInt(1))),
      Fp2(Fp::FromBigInt(ctx, P().p() - BigInt(1)), Fp::Zero(ctx)),
  };
  for (int i = 0; i < 12; ++i) edge.push_back(random_fp2());
  for (const Fp2& a : edge) {
    EXPECT_EQ(a.Sqr(), a.SqrReference());
    EXPECT_EQ(a.Sqr(), a.MulReference(a));
    for (const Fp2& b : edge) {
      EXPECT_EQ(a * b, a.MulReference(b));
      EXPECT_EQ(a * b, b * a);
    }
  }
}

TEST_P(MathPresetTest, MontSqrBitIdenticalToMontMulSweep) {
  // The dedicated squaring kernel (SOS: distinct products + doubling +
  // separate reduction) must be bit-identical to the fused-CIOS
  // MontMul(a, a) at every preset limb count: both produce the
  // canonical Montgomery representative of a^2 * R^-1.
  const FpCtx* ctx = P().ctx();
  const size_t n = ctx->nlimbs();
  DeterministicRandom rng(31);
  auto to_limbs = [&](const BigInt& v) {
    std::array<uint64_t, kMaxFpLimbs> out{};
    const auto& limbs = v.limbs();
    for (size_t i = 0; i < limbs.size(); ++i) out[i] = limbs[i];
    return out;
  };
  std::vector<BigInt> values = {BigInt(0), BigInt(1), BigInt(2),
                                P().p() - BigInt(1), P().p() - BigInt(2)};
  // Sparse limb patterns (single set bits near limb boundaries) stress
  // the carry chains of the doubling and reduction passes.
  for (size_t shift : {1u, 63u, 64u, 65u, 127u, 128u}) {
    if (shift >= P().p().BitLength()) continue;
    values.push_back(BigInt(1) << shift);
    values.push_back(P().p() - (BigInt(1) << shift));
  }
  for (int i = 0; i < 40; ++i) {
    values.push_back(BigInt::RandomBelow(rng, P().p()));
  }
  for (const BigInt& v : values) {
    auto raw = to_limbs(v);
    std::array<uint64_t, kMaxFpLimbs> mont{}, sq{}, ref{};
    ctx->MontMul(raw.data(), ctx->r2(), mont.data());  // to Montgomery form
    ctx->MontSqr(mont.data(), sq.data());
    ctx->MontMul(mont.data(), mont.data(), ref.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(sq[i], ref[i]) << "limb " << i << " of 0x" << v.ToHex();
    }
    // In-place squaring (out aliases a) must agree as well.
    std::array<uint64_t, kMaxFpLimbs> alias = mont;
    ctx->MontSqr(alias.data(), alias.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(alias[i], ref[i]) << "aliased limb " << i;
    }
  }
  // The dispatched Fp::Sqr (threshold fallback included) agrees with
  // the plain product at this preset.
  for (int i = 0; i < 8; ++i) {
    Fp a = Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, P().p()));
    EXPECT_EQ(a.Sqr(), a * a);
  }
}

TEST_P(MathPresetTest, PairingConsistentWithScalars) {
  DeterministicRandom rng(11);
  const EcPoint& g = P().generator();
  BigInt k(12345);
  Fp2 direct = P().Pairing(P().curve().ScalarMul(k, g), g);
  Fp2 powered = P().Pairing(g, g).Pow(k);
  EXPECT_EQ(direct, powered);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, MathPresetTest,
                         ::testing::Values(ParamPreset::kSmall,
                                           ParamPreset::kTest,
                                           ParamPreset::kLarge),
                         [](const ::testing::TestParamInfo<ParamPreset>&
                                info) {
                           switch (info.param) {
                             case ParamPreset::kSmall:
                               return "Small";
                             case ParamPreset::kTest:
                               return "Test";
                             case ParamPreset::kLarge:
                               return "Large";
                           }
                           return "Unknown";
                         });

TEST(MathGenerateTest, FreshParametersAreSelfConsistent) {
  // Generation (not just the baked presets) yields a working pairing.
  DeterministicRandom rng(20260706);
  auto params = TypeAParams::Generate(48, 160, rng);
  ASSERT_TRUE(params.ok()) << params.status();
  const auto& p = *params.value();
  BigInt a = p.RandomScalar(rng);
  BigInt b = p.RandomScalar(rng);
  const EcPoint& g = p.generator();
  EXPECT_EQ(p.Pairing(p.curve().ScalarMul(a, g), p.curve().ScalarMul(b, g)),
            p.Pairing(g, g).Pow(BigInt::Mod(a * b, p.q())));
}

TEST(MathGenerateTest, RejectsImpossibleSizes) {
  DeterministicRandom rng(1);
  EXPECT_FALSE(TypeAParams::Generate(160, 160, rng).ok());
}

}  // namespace
}  // namespace mws::math
