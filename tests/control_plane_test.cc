// Control-plane scaling tests (`ctest -L control`): the striped
// TTL-evicting session registries and bounded replay caches behind the
// Gatekeeper and the PKG, the policy database's ordered secondary index
// and invalidate-on-Revoke AID cache, and TSan-clean stress over the
// concurrent auth / token-issuance / AID-resolution / revoke hot paths.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/crypto/modes.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sealed_box.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/store/policy_db.h"
#include "src/util/clock.h"
#include "src/util/ttl_store.h"
#include "src/wire/auth.h"

namespace mws {
namespace {

using util::Bytes;
using util::ReplayCache;
using util::TtlStore;
using util::TtlStoreOptions;

// --- TtlStore units ---

TEST(TtlStoreTest, TtlReapsExpiredEntriesOnInsert) {
  TtlStore<int> store({.stripes = 1, .max_entries = 16, .ttl_micros = 100});
  store.Insert("a", 1, 1000);
  store.Insert("b", 2, 1050);
  EXPECT_EQ(store.Size(), 2u);
  // "a" is past TTL by now; the insert reaps it from the stripe front.
  auto stats = store.Insert("c", 3, 1101);
  EXPECT_EQ(stats.reaped, 1u);
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_FALSE(store.Get("a", 1101).has_value());
  EXPECT_EQ(store.Get("b", 1101).value(), 2);
  EXPECT_EQ(store.Get("c", 1101).value(), 3);
}

TEST(TtlStoreTest, GetDistinguishesExpiredFromAbsent) {
  TtlStore<int> store({.stripes = 2, .max_entries = 16, .ttl_micros = 100});
  store.Insert("a", 1, 1000);
  bool expired = false;
  EXPECT_FALSE(store.Get("ghost", 1000, &expired).has_value());
  EXPECT_FALSE(expired);
  // Past TTL: the lookup reports expiry and erases the entry.
  EXPECT_FALSE(store.Get("a", 1101, &expired).has_value());
  EXPECT_TRUE(expired);
  EXPECT_EQ(store.Size(), 0u);
  // Second lookup sees plain absence.
  EXPECT_FALSE(store.Get("a", 1101, &expired).has_value());
  EXPECT_FALSE(expired);
}

TEST(TtlStoreTest, CapacityEvictsOldestFirst) {
  TtlStore<int> store({.stripes = 1, .max_entries = 3, .ttl_micros = 0});
  store.Insert("k1", 1, 10);
  store.Insert("k2", 2, 20);
  store.Insert("k3", 3, 30);
  auto stats = store.Insert("k4", 4, 40);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(store.Size(), 3u);
  EXPECT_FALSE(store.Get("k1", 40).has_value());
  EXPECT_TRUE(store.Get("k2", 40).has_value());
  EXPECT_TRUE(store.Get("k4", 40).has_value());
}

TEST(TtlStoreTest, OverwriteInvalidatesOldOrderStamp) {
  TtlStore<int> store({.stripes = 1, .max_entries = 2, .ttl_micros = 0});
  store.Insert("a", 1, 10);
  store.Insert("a", 2, 50);  // overwrite: the (10, "a") stamp goes stale
  store.Insert("b", 3, 60);
  EXPECT_EQ(store.Size(), 2u);
  // Eviction must skip the stale stamp and claim the oldest *live*
  // entry, which is "a" (created 50), not a phantom.
  auto stats = store.Insert("c", 4, 70);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_FALSE(store.Get("a", 70).has_value());
  EXPECT_EQ(store.Get("b", 70).value(), 3);
  EXPECT_EQ(store.Get("c", 70).value(), 4);
}

TEST(TtlStoreTest, SweepVariantsRemoveTheSameEntries) {
  TtlStoreOptions tuned{.stripes = 4, .max_entries = 64, .ttl_micros = 100};
  TtlStoreOptions reference{.stripes = 1, .max_entries = 64,
                            .ttl_micros = 100};
  TtlStore<int> a(tuned), b(reference);
  for (int i = 0; i < 20; ++i) {
    a.Insert("k" + std::to_string(i), i, 1000 + i);
    b.Insert("k" + std::to_string(i), i, 1000 + i);
  }
  // now = 1110: exactly the entries stamped < 1010 are expired.
  EXPECT_EQ(a.SweepExpired(1110), 10u);
  EXPECT_EQ(b.SweepExpiredFull(1110), 10u);
  EXPECT_EQ(a.Size(), 10u);
  EXPECT_EQ(b.Size(), 10u);
  // now = 1200: the rest age out too.
  EXPECT_EQ(a.SweepExpired(1200), 10u);
  EXPECT_EQ(b.SweepExpiredFull(1200), 10u);
  EXPECT_EQ(a.Size(), 0u);
  EXPECT_EQ(b.Size(), 0u);
  // Sweeping an already-clean store is free.
  EXPECT_EQ(a.SweepExpired(1200), 0u);
  EXPECT_EQ(b.SweepExpiredFull(1200), 0u);
}

TEST(TtlStoreTest, EraseKeepsSizeExact) {
  TtlStore<int> store({.stripes = 4, .max_entries = 64, .ttl_micros = 0});
  for (int i = 0; i < 10; ++i) {
    store.Insert("k" + std::to_string(i), i, 100 + i);
  }
  EXPECT_EQ(store.Size(), 10u);
  EXPECT_TRUE(store.Erase("k3"));
  EXPECT_FALSE(store.Erase("k3"));
  EXPECT_EQ(store.Size(), 9u);
}

// --- ReplayCache units ---

TEST(ReplayCacheTest, RejectsDuplicatePairs) {
  ReplayCache cache({.stripes = 4, .max_entries = 64, .window_micros = 1000});
  EXPECT_TRUE(cache.CheckAndInsert(500, "rc1/500/aa", 500));
  EXPECT_FALSE(cache.CheckAndInsert(500, "rc1/500/aa", 501));
  // A different discriminator at the same timestamp is not a replay.
  EXPECT_TRUE(cache.CheckAndInsert(500, "rc1/500/bb", 501));
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(ReplayCacheTest, PrunesEntriesOutsideTheWindow) {
  ReplayCache cache({.stripes = 1, .max_entries = 64, .window_micros = 1000});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(cache.CheckAndInsert(1000 + i, "e" + std::to_string(i),
                                     1000 + i));
  }
  EXPECT_EQ(cache.Size(), 5u);
  // Far beyond the window the old entries are pruned on the next insert
  // (their timestamps already fail the upstream freshness check, so
  // forgetting them loses nothing).
  EXPECT_TRUE(cache.CheckAndInsert(10'000, "late", 10'000));
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.Evictions(), 0u);
}

TEST(ReplayCacheTest, CapacityBoundEvictsOldestAndCounts) {
  ReplayCache cache({.stripes = 1, .max_entries = 4, .window_micros = 0});
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.CheckAndInsert(100 + i, "e" + std::to_string(i),
                                     100 + i));
  }
  EXPECT_EQ(cache.Size(), 4u);
  EXPECT_EQ(cache.Evictions(), 4u);
  // The survivors are the newest four.
  EXPECT_FALSE(cache.CheckAndInsert(107, "e7", 108));
  // The evicted oldest is accepted again: only the freshness check
  // protects it now, which is exactly the documented trade.
  EXPECT_TRUE(cache.CheckAndInsert(100, "e0", 108));
}

// --- Gatekeeper / PKG harness ---

struct MwsHarness {
  explicit MwsHarness(util::ControlPlaneTuning tuning = {},
                      store::PolicyDbOptions policy = {})
      : storage(store::KvStore::Open({.path = ""}).value()),
        clock(1'000'000'000),
        rng(7),
        mws_pkg_key(Bytes(32, 0x5a)),
        service(storage.get(), mws_pkg_key, &clock, &rng,
                MakeOptions(&metrics, tuning, policy)) {}

  static mws::MwsOptions MakeOptions(obs::Registry* m,
                                     util::ControlPlaneTuning t,
                                     store::PolicyDbOptions p) {
    mws::MwsOptions o;
    o.metrics = m;
    o.tuning = t;
    o.policy = p;
    return o;
  }

  crypto::RsaKeyPair RegisterRc(const std::string& identity) {
    auto keys = crypto::RsaGenerateKeyPair(768, rng).value();
    EXPECT_TRUE(service
                    .RegisterReceivingClient(
                        identity, wire::HashPassword("pw"),
                        crypto::SerializeRsaPublicKey(keys.public_key))
                    .ok());
    return keys;
  }

  /// Builds a fresh auth challenge. `req_rng` lets stress threads use
  /// their own generator instead of the shared fixture one.
  wire::RcAuthRequest MakeAuthRequest(const std::string& identity,
                                      const crypto::RsaKeyPair& keys,
                                      util::RandomSource* req_rng = nullptr) {
    util::RandomSource& r = req_rng != nullptr ? *req_rng : rng;
    wire::RcAuthPlain plain;
    plain.rc_identity = identity;
    plain.timestamp_micros = clock.NowMicros();
    plain.client_nonce = r.Generate(16);
    Bytes key = wire::DeriveAuthKey(wire::HashPassword("pw"),
                                    crypto::CipherKind::kDes);
    wire::RcAuthRequest request;
    request.rc_identity = identity;
    request.rsa_public_key = crypto::SerializeRsaPublicKey(keys.public_key);
    request.auth_ciphertext =
        crypto::CbcEncrypt(crypto::CipherKind::kDes, key, plain.Encode(), r)
            .value();
    return request;
  }

  std::unique_ptr<store::KvStore> storage;
  obs::Registry metrics;
  util::SimulatedClock clock;
  util::DeterministicRandom rng;
  Bytes mws_pkg_key;
  mws::MwsService service;
};

TEST(ControlPlaneGatekeeperTest, SessionCapacityBoundAndGauges) {
  MwsHarness h({.stripes = 2, .max_sessions = 4});
  auto keys = h.RegisterRc("RC1");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.service.Authenticate(h.MakeAuthRequest("RC1", keys)).ok());
    h.clock.AdvanceMicros(1000);
  }
  size_t live = h.service.gatekeeper().ActiveSessions();
  // Per-stripe cap is ceil(4/2) = 2, so at most 4 sessions survive no
  // matter how many authentications land.
  EXPECT_LE(live, 4u);
  EXPECT_GE(live, 2u);  // each stripe keeps its newest entries
  auto snap = h.metrics.Snapshot();
  ASSERT_NE(snap.gauge("gatekeeper.sessions"), nullptr);
  EXPECT_EQ(*snap.gauge("gatekeeper.sessions"),
            static_cast<int64_t>(live));
  ASSERT_NE(snap.counter("gatekeeper.sessions_evicted"), nullptr);
  EXPECT_EQ(*snap.counter("gatekeeper.sessions_evicted"), 8 - live);
}

TEST(ControlPlaneGatekeeperTest, ReplayCacheStaysBounded) {
  MwsHarness h({.stripes = 2, .max_sessions = 64, .max_replay_entries = 4});
  auto keys = h.RegisterRc("RC1");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.service.Authenticate(h.MakeAuthRequest("RC1", keys)).ok());
    h.clock.AdvanceMicros(1000);
  }
  EXPECT_LE(h.service.gatekeeper().ReplayEntries(), 4u);
  auto snap = h.metrics.Snapshot();
  ASSERT_NE(snap.gauge("gatekeeper.replay_entries"), nullptr);
  EXPECT_EQ(*snap.gauge("gatekeeper.replay_entries"),
            static_cast<int64_t>(h.service.gatekeeper().ReplayEntries()));
}

TEST(ControlPlaneGatekeeperTest, SweepExpiredSessionsReapsAndRefreshesGauge) {
  MwsHarness h;
  auto keys = h.RegisterRc("RC1");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(h.service.Authenticate(h.MakeAuthRequest("RC1", keys)).ok());
    h.clock.AdvanceMicros(1000);
  }
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 3u);
  h.clock.AdvanceMicros(h.service.options().freshness_window_micros + 1);
  EXPECT_EQ(h.service.gatekeeper().SweepExpiredSessions(), 3u);
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 0u);
  auto snap = h.metrics.Snapshot();
  ASSERT_NE(snap.gauge("gatekeeper.sessions"), nullptr);
  EXPECT_EQ(*snap.gauge("gatekeeper.sessions"), 0);
}

/// The tuned (striped, amortized-sweep) gatekeeper and the retained
/// reference mode (single stripe, full sweep per auth) must be
/// behaviorally indistinguishable through the public API.
class GatekeeperModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(GatekeeperModeTest, ObservableBehaviorMatchesAcrossModes) {
  util::ControlPlaneTuning tuning;
  tuning.reference_mode = GetParam();
  MwsHarness h(tuning);
  SCOPED_TRACE(GetParam() ? "reference" : "tuned");
  auto keys = h.RegisterRc("RC1");

  wire::RcAuthRequest req1 = h.MakeAuthRequest("RC1", keys);
  auto r1 = h.service.Authenticate(req1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 1u);

  // Verbatim replay is rejected in both modes.
  auto replayed = h.service.Authenticate(req1);
  ASSERT_FALSE(replayed.ok());
  EXPECT_TRUE(replayed.status().IsUnauthenticated());
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 1u);

  h.clock.AdvanceMicros(1000);
  auto r2 = h.service.Authenticate(h.MakeAuthRequest("RC1", keys));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 2u);
  EXPECT_TRUE(h.service.gatekeeper().GetSession(r1->session_id).ok());

  // Both sessions expire; the lookup reaps its own target.
  h.clock.AdvanceMicros(h.service.options().freshness_window_micros + 1);
  auto expired = h.service.gatekeeper().GetSession(r1->session_id);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsUnauthenticated());
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 1u);

  // The next successful auth garbage-collects the rest.
  auto r3 = h.service.Authenticate(h.MakeAuthRequest("RC1", keys));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 1u);

  h.service.gatekeeper().CloseSession(r3->session_id);
  EXPECT_EQ(h.service.gatekeeper().ActiveSessions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(TunedAndReference, GatekeeperModeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Reference" : "Tuned";
                         });

// --- PKG session registry ---

/// Authenticates `identity` at `pkg` via a fresh MWS-issued token.
void AuthenticateAtPkg(MwsHarness& h, pkg::PkgService& pkg,
                       const std::string& identity,
                       const crypto::RsaKeyPair& keys) {
  auto grants = h.service.mms().GrantsFor(identity).value();
  auto token =
      h.service.token_generator()
          .IssueToken(identity, crypto::SerializeRsaPublicKey(keys.public_key),
                      grants)
          .value();
  auto token_bytes =
      crypto::OpenSealedBox(keys.private_key, crypto::CipherKind::kDes, token);
  auto token_plain = wire::TokenPlain::Decode(token_bytes.value()).value();
  wire::AuthenticatorPlain auth{identity, h.clock.NowMicros()};
  Bytes auth_key = wire::DeriveChannelKey(
      token_plain.session_key, crypto::CipherKind::kDes, "rc-pkg-authenticator");
  wire::PkgAuthRequest request;
  request.rc_identity = identity;
  request.ticket = token_plain.ticket;
  request.authenticator =
      crypto::CbcEncrypt(crypto::CipherKind::kDes, auth_key, auth.Encode(),
                         h.rng)
          .value();
  ASSERT_TRUE(pkg.Authenticate(request).ok());
}

TEST(ControlPlanePkgTest, SessionCapacityBoundAndGauges) {
  MwsHarness h;
  auto keys = h.RegisterRc("RC1");
  h.service.GrantAttribute("RC1", "A1").value();
  pkg::PkgOptions options;
  options.metrics = &h.metrics;
  options.tuning = {.stripes = 1, .max_sessions = 2};
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      h.mws_pkg_key, &h.clock, &h.rng, options);
  for (int i = 0; i < 5; ++i) {
    AuthenticateAtPkg(h, pkg, "RC1", keys);
    h.clock.AdvanceMicros(1000);
  }
  EXPECT_EQ(pkg.ActiveSessions(), 2u);
  auto snap = h.metrics.Snapshot();
  ASSERT_NE(snap.gauge("pkg.sessions"), nullptr);
  EXPECT_EQ(*snap.gauge("pkg.sessions"), 2);
  ASSERT_NE(snap.counter("pkg.sessions_evicted"), nullptr);
  EXPECT_EQ(*snap.counter("pkg.sessions_evicted"), 3u);
}

TEST(ControlPlanePkgTest, SweepExpiredSessionsReaps) {
  MwsHarness h;
  auto keys = h.RegisterRc("RC1");
  h.service.GrantAttribute("RC1", "A1").value();
  pkg::PkgOptions options;
  options.metrics = &h.metrics;
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      h.mws_pkg_key, &h.clock, &h.rng, options);
  for (int i = 0; i < 3; ++i) {
    AuthenticateAtPkg(h, pkg, "RC1", keys);
    h.clock.AdvanceMicros(1000);
  }
  EXPECT_EQ(pkg.ActiveSessions(), 3u);
  h.clock.AdvanceMicros(options.session_lifetime_micros + 1);
  EXPECT_EQ(pkg.SweepExpiredSessions(), 3u);
  EXPECT_EQ(pkg.ActiveSessions(), 0u);
  auto snap = h.metrics.Snapshot();
  ASSERT_NE(snap.gauge("pkg.sessions"), nullptr);
  EXPECT_EQ(*snap.gauge("pkg.sessions"), 0);
}

// --- PolicyDb secondary index + AID cache ---

/// Asserts every index-served read agrees with its retained scan path.
void ExpectIndexMatchesScans(const store::PolicyDb& db,
                             const std::vector<std::string>& identities) {
  auto all = db.AllRows().value();
  auto all_scan = db.AllRowsScan().value();
  EXPECT_EQ(all, all_scan);
  for (const std::string& id : identities) {
    EXPECT_EQ(db.RowsForIdentity(id).value(),
              db.RowsForIdentityScan(id).value())
        << id;
    EXPECT_EQ(db.ExpressionsForIdentity(id).value(),
              db.ExpressionsForIdentityScan(id).value())
        << id;
  }
  for (const store::PolicyRow& row : all) {
    EXPECT_EQ(db.RowForAid(row.aid).value(), db.RowForAidUncached(row.aid).value());
  }
}

TEST(PolicyDbIndexTest, IndexMatchesScanOnMixedWorkload) {
  auto storage = store::KvStore::Open({.path = ""}).value();
  store::PolicyDb db(storage.get());
  const std::vector<std::string> ids = {"RC1", "RC2", "RC3"};
  // Grants across identities, including shared attribute names.
  for (const std::string& id : ids) {
    for (const std::string attr : {"A1", "A2", "A3"}) {
      ASSERT_TRUE(db.Grant(id, attr).ok());
    }
  }
  EXPECT_TRUE(db.Grant("RC1", "A1").status().IsAlreadyExists());
  // Expressions materialize origin-tagged rows.
  uint64_t seq = db.GrantExpression("RC2", "GAS-*").value();
  ASSERT_TRUE(db.Grant("RC2", "GAS-NORTH", seq).ok());
  ASSERT_TRUE(db.Grant("RC2", "GAS-SOUTH", seq).ok());
  db.GrantExpression("RC3", "ELECTRIC-*").value();
  // Revocations: a plain grant and a whole expression.
  ASSERT_TRUE(db.Revoke("RC1", "A2").ok());
  EXPECT_TRUE(db.Revoke("RC1", "A2").IsNotFound());
  ASSERT_TRUE(db.RevokeExpression("RC2", seq).ok());
  EXPECT_FALSE(db.HasAccess("RC2", "GAS-NORTH"));
  ExpectIndexMatchesScans(db, ids);
}

TEST(PolicyDbIndexTest, HydratesIndexFromExistingTable) {
  auto storage = store::KvStore::Open({.path = ""}).value();
  std::vector<uint64_t> aids;
  {
    store::PolicyDb db(storage.get());
    aids.push_back(db.Grant("RC1", "A1").value());
    aids.push_back(db.Grant("RC1", "A2").value());
    aids.push_back(db.Grant("RC2", "A1").value());
    db.GrantExpression("RC1", "GAS-*").value();
    ASSERT_TRUE(db.Revoke("RC1", "A2").ok());
  }
  // A second instance over the same table rebuilds the index from it.
  store::PolicyDb db(storage.get());
  ExpectIndexMatchesScans(db, {"RC1", "RC2"});
  EXPECT_TRUE(db.RowForAid(aids[1]).status().IsNotFound());
  // The AID counter continues where the first instance left off.
  uint64_t fresh = db.Grant("RC3", "A1").value();
  for (uint64_t aid : aids) EXPECT_NE(fresh, aid);
}

TEST(PolicyDbIndexTest, AidCacheServesHotRowsAndInvalidatesOnRevoke) {
  auto storage = store::KvStore::Open({.path = ""}).value();
  obs::Registry metrics;
  store::PolicyDb db(storage.get(), {.metrics = &metrics});
  uint64_t aid = db.Grant("RC1", "A1").value();
  store::PolicyRow expected{"RC1", "A1", aid, 0};
  EXPECT_EQ(db.RowForAid(aid).value(), expected);  // miss, fills cache
  EXPECT_EQ(db.RowForAid(aid).value(), expected);  // hit
  EXPECT_EQ(db.AidCacheMisses(), 1u);
  EXPECT_EQ(db.AidCacheHits(), 1u);
  auto snap = metrics.Snapshot();
  ASSERT_NE(snap.counter("policy.aid_cache_hits"), nullptr);
  EXPECT_EQ(*snap.counter("policy.aid_cache_hits"), 1u);
  EXPECT_EQ(*snap.counter("policy.aid_cache_misses"), 1u);
  // Revoke must invalidate: a hot cache entry may never outlive the
  // grant (the PKG would keep extracting keys for a revoked AID).
  ASSERT_TRUE(db.Revoke("RC1", "A1").ok());
  EXPECT_TRUE(db.RowForAid(aid).status().IsNotFound());
  // Re-granting issues a fresh AID; the old one stays dead.
  uint64_t fresh = db.Grant("RC1", "A1").value();
  EXPECT_NE(fresh, aid);
  EXPECT_TRUE(db.RowForAid(aid).status().IsNotFound());
  EXPECT_EQ(db.RowForAid(fresh).value().aid, fresh);
}

TEST(PolicyDbIndexTest, CacheDisabledStillResolves) {
  auto storage = store::KvStore::Open({.path = ""}).value();
  store::PolicyDb db(storage.get(), {.aid_cache_capacity = 0});
  uint64_t aid = db.Grant("RC1", "A1").value();
  EXPECT_EQ(db.RowForAid(aid).value().attribute, "A1");
  EXPECT_EQ(db.RowForAid(aid).value().attribute, "A1");
  EXPECT_EQ(db.AidCacheHits(), 0u);  // nothing is ever cached
}

TEST(PolicyDbIndexTest, IndexDisabledRoutesReadsToScans) {
  auto storage = store::KvStore::Open({.path = ""}).value();
  store::PolicyDb db(storage.get(), {.enable_index = false});
  ASSERT_TRUE(db.Grant("RC1", "A1").ok());
  ASSERT_TRUE(db.Grant("RC1", "A2").ok());
  ASSERT_TRUE(db.Revoke("RC1", "A1").ok());
  auto rows = db.RowsForIdentity("RC1").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].attribute, "A2");
  EXPECT_EQ(db.RowsForIdentity("RC1").value(),
            db.RowsForIdentityScan("RC1").value());
  EXPECT_EQ(db.AllRows().value(), db.AllRowsScan().value());
}

// --- Concurrency stress (run under TSan by the sanitizer jobs) ---

TEST(ControlPlaneStressTest, ConcurrentAuthIssueResolveRevoke) {
  MwsHarness h({.stripes = 8, .max_sessions = 256});
  constexpr int kAuthThreads = 3;
  constexpr int kIters = 40;
  std::vector<std::string> identities;
  std::vector<crypto::RsaKeyPair> keys;
  for (int t = 0; t < kAuthThreads; ++t) {
    identities.push_back("RC" + std::to_string(t));
    keys.push_back(h.RegisterRc(identities.back()));
  }
  h.RegisterRc("RC-TOKEN");
  auto token_keys = crypto::RsaGenerateKeyPair(768, h.rng).value();
  ASSERT_TRUE(h.service
                  .RegisterReceivingClient(
                      "RC-STABLE", wire::HashPassword("pw"),
                      crypto::SerializeRsaPublicKey(token_keys.public_key))
                  .ok());
  ASSERT_TRUE(h.service.GrantAttribute("RC-STABLE", "A-STABLE").ok());
  auto stable_grants = h.service.mms().GrantsFor("RC-STABLE").value();
  uint64_t stable_aid = stable_grants[0].aid;

  std::atomic<bool> done{false};
  std::atomic<int> auth_failures{0};
  std::vector<std::thread> threads;
  // Authentication threads: auth, look up own session, close some.
  for (int t = 0; t < kAuthThreads; ++t) {
    threads.emplace_back([&, t] {
      util::DeterministicRandom thread_rng(100 + t);
      for (int i = 0; i < kIters; ++i) {
        auto response = h.service.Authenticate(
            h.MakeAuthRequest(identities[t], keys[t], &thread_rng));
        if (!response.ok()) {
          auth_failures.fetch_add(1);
          continue;
        }
        auto session = h.service.gatekeeper().GetSession(response->session_id);
        if (session.ok()) {
          EXPECT_EQ(session->rc_identity, identities[t]);
        }
        if (i % 3 == 0) {
          h.service.gatekeeper().CloseSession(response->session_id);
        }
      }
    });
  }
  // Clock thread: keeps time moving (well inside the freshness window).
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      h.clock.AdvanceMicros(200);
      std::this_thread::yield();
    }
  });
  // Sweeper thread: the periodic maintenance path races the hot path.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      h.service.gatekeeper().SweepExpiredSessions();
      (void)h.service.gatekeeper().ActiveSessions();
      (void)h.service.gatekeeper().ReplayEntries();
      std::this_thread::yield();
    }
  });
  // Token-issuance thread against a stable grant set.
  threads.emplace_back([&] {
    for (int i = 0; i < kIters; ++i) {
      auto token = h.service.token_generator().IssueToken(
          "RC-STABLE", crypto::SerializeRsaPublicKey(token_keys.public_key),
          stable_grants);
      EXPECT_TRUE(token.ok());
    }
  });
  // Policy mutation thread: grant/revoke churn on its own identity.
  threads.emplace_back([&] {
    for (int i = 0; i < kIters; ++i) {
      std::string attr = "A-CHURN-" + std::to_string(i % 4);
      auto granted = h.service.GrantAttribute("RC-TOKEN", attr);
      if (granted.ok()) {
        (void)h.service.policy_db().RowForAid(granted.value());
        EXPECT_TRUE(h.service.RevokeAttribute("RC-TOKEN", attr).ok());
      }
    }
  });
  // Resolution threads: hot AID hits racing the churn above.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters * 4; ++i) {
        auto row = h.service.policy_db().RowForAid(stable_aid);
        EXPECT_TRUE(row.ok());
        (void)h.service.policy_db().RowsForIdentity("RC-TOKEN");
        (void)h.service.PolicyTable();
      }
    });
  }
  // Join the bounded workers first, then stop the clock/sweeper loops.
  for (size_t i = kAuthThreads + 2; i < threads.size(); ++i) threads[i].join();
  for (size_t i = 0; i < kAuthThreads; ++i) threads[i].join();
  done.store(true, std::memory_order_relaxed);
  threads[kAuthThreads].join();
  threads[kAuthThreads + 1].join();

  EXPECT_EQ(auth_failures.load(), 0);
  EXPECT_LE(h.service.gatekeeper().ActiveSessions(), 256u);
  // Post-quiesce: the index still agrees with the table.
  EXPECT_EQ(h.service.policy_db().AllRows().value(),
            h.service.policy_db().AllRowsScan().value());
}

TEST(ControlPlaneStressTest, ConcurrentPolicyIndexAndCacheStayConsistent) {
  auto storage = store::KvStore::Open({.path = ""}).value();
  store::PolicyDb db(storage.get(),
                     {.aid_cache_capacity = 64, .aid_cache_stripes = 4});
  constexpr int kIters = 60;
  std::vector<std::thread> threads;
  // Writer threads churn disjoint identities.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&db, w] {
      std::string id = "W" + std::to_string(w);
      for (int i = 0; i < kIters; ++i) {
        std::string attr = "A" + std::to_string(i % 8);
        auto granted = db.Grant(id, attr);
        if (granted.ok() && i % 2 == 0) {
          EXPECT_TRUE(db.Revoke(id, attr).ok());
        }
      }
    });
  }
  // Expression thread.
  threads.emplace_back([&db] {
    for (int i = 0; i < kIters / 2; ++i) {
      auto seq = db.GrantExpression("W0", "EXPR-*");
      if (seq.ok() && i % 2 == 0) {
        EXPECT_TRUE(db.RevokeExpression("W0", seq.value()).ok());
      }
    }
  });
  // Reader threads: range reads and (racing) AID resolution.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&db] {
      for (int i = 0; i < kIters; ++i) {
        auto rows = db.AllRows().value();
        for (const auto& row : rows) {
          // A row revoked between the listing and the lookup resolves
          // to NotFound; both outcomes must agree with the table.
          auto cached = db.RowForAid(row.aid);
          if (cached.ok()) {
            EXPECT_EQ(cached.value().aid, row.aid);
          }
        }
        (void)db.RowsForIdentity("W0");
        (void)db.HasAccess("W1", "A3");
        (void)db.ExpressionsForIdentity("W0");
      }
    });
  }
  for (auto& t : threads) t.join();
  ExpectIndexMatchesScans(db, {"W0", "W1"});
}

}  // namespace
}  // namespace mws
