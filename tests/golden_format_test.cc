// Golden-format tests: exact byte-level expectations for the wire and
// storage encodings. These lock on-disk and on-wire compatibility — if
// one of these fails, a change has silently broken interop with
// previously stored logs or deployed peers.

#include <gtest/gtest.h>

#include "src/store/message_db.h"
#include "src/util/hex.h"
#include "src/util/serde.h"
#include "src/wire/messages.h"

namespace mws {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::HexEncode;

TEST(GoldenFormatTest, WriterPrimitives) {
  util::Writer w;
  w.PutU8(0x01);
  w.PutU16(0x0203);
  w.PutU32(0x04050607);
  w.PutU64(0x08090a0b0c0d0e0fULL);
  EXPECT_EQ(HexEncode(w.data()), "0102030405060708090a0b0c0d0e0f");
}

TEST(GoldenFormatTest, WriterLengthPrefixedFields) {
  util::Writer w;
  w.PutBytes({0xaa, 0xbb});
  w.PutString("RC");
  w.PutBytes({});
  EXPECT_EQ(HexEncode(w.data()),
            "00000002aabb"   // bytes: u32 len + payload
            "000000025243"   // string "RC"
            "00000000");     // empty bytes
}

TEST(GoldenFormatTest, DepositResponse) {
  wire::DepositResponse m{0x42};
  EXPECT_EQ(HexEncode(m.Encode()), "0000000000000042");
}

TEST(GoldenFormatTest, RcAuthResponse) {
  wire::RcAuthResponse m{Bytes{0xab, 0xcd}};
  EXPECT_EQ(HexEncode(m.Encode()), "00000002abcd");
}

TEST(GoldenFormatTest, RetrieveRequest) {
  wire::RetrieveRequest m;
  m.session_id = {0x11};
  m.after_message_id = 1;
  m.from_micros = 2;
  m.to_micros = 3;
  EXPECT_EQ(HexEncode(m.Encode()),
            "0000000111"
            "0000000000000001"
            "0000000000000002"
            "0000000000000003");
}

TEST(GoldenFormatTest, KeyRequest) {
  wire::KeyRequest m;
  m.session_id = {0x01};
  m.aid = 5;
  m.nonce = {0xff};
  EXPECT_EQ(HexEncode(m.Encode()),
            "0000000101"
            "0000000000000005"
            "00000001ff");
}

TEST(GoldenFormatTest, AuthenticatorPlain) {
  wire::AuthenticatorPlain m{"RC", 7};
  EXPECT_EQ(HexEncode(m.Encode()), "000000025243" "0000000000000007");
}

TEST(GoldenFormatTest, TicketPlain) {
  wire::TicketPlain m;
  m.rc_identity = "RC";
  m.session_key = {0x01, 0x02};
  m.aid_attributes = {{1, "A"}};
  m.expiry_micros = 9;
  EXPECT_EQ(HexEncode(m.Encode()),
            "000000025243"        // "RC"
            "000000020102"        // session key
            "00000001"            // 1 mapping
            "0000000000000001"    // aid 1
            "0000000141"          // "A"
            "0000000000000009");  // expiry
}

TEST(GoldenFormatTest, TokenPlain) {
  wire::TokenPlain m{Bytes{0x0a}, Bytes{0x0b, 0x0c}};
  EXPECT_EQ(HexEncode(m.Encode()), "000000010a" "000000020b0c");
}

TEST(GoldenFormatTest, KeyBatchRequest) {
  wire::KeyBatchRequest m;
  m.session_id = {0x01};
  m.items = {{2, {0xee}}, {3, {}}};
  EXPECT_EQ(HexEncode(m.Encode()),
            "0000000101"
            "00000002"
            "0000000000000002" "00000001ee"
            "0000000000000003" "00000000");
}

TEST(GoldenFormatTest, KeyBatchResponse) {
  wire::KeyBatchResponse m;
  m.items = {{true, {0xaa}}, {false, BytesFromString("no")}};
  EXPECT_EQ(HexEncode(m.Encode()),
            "00000002"
            "01" "00000001aa"
            "00" "000000026e6f");
}

TEST(GoldenFormatTest, DepositRequestAuthenticatedBytes) {
  // The exact bytes the deposit MAC covers: this is the
  // integrity-critical encoding and must never drift.
  wire::DepositRequest m;
  m.u = {0x04};
  m.ciphertext = {0xc1};
  m.attribute = "A";
  m.nonce = {0x0e};
  m.device_id = "SD";
  m.timestamp_micros = 16;
  m.mac = {0xFF};  // excluded from AuthenticatedBytes
  EXPECT_EQ(HexEncode(m.AuthenticatedBytes()),
            "0000000104"        // u
            "00000001c1"        // ciphertext
            "0000000141"        // attribute "A"
            "000000010e"        // nonce
            "000000025344"      // device "SD"
            "0000000000000010"  // timestamp 16
  );
  // Full encoding appends the MAC as a length-prefixed field.
  EXPECT_EQ(HexEncode(m.Encode()),
            HexEncode(m.AuthenticatedBytes()) + "00000001ff");
}

TEST(GoldenFormatTest, StoredMessageRecord) {
  store::StoredMessage m;
  m.id = 1;
  m.u = {0x04};
  m.ciphertext = {0xc1};
  m.attribute = "A";
  m.nonce = {0x0e};
  m.device_id = "SD";
  m.timestamp_micros = 16;
  EXPECT_EQ(HexEncode(m.Encode()),
            "0000000000000001"  // id
            "0000000104"        // u
            "00000001c1"        // ciphertext
            "0000000141"        // attribute
            "000000010e"        // nonce
            "000000025344"      // device
            "0000000000000010"  // timestamp
  );
  // And it decodes back identically.
  auto back = store::StoredMessage::Decode(m.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Encode(), m.Encode());
}

TEST(GoldenFormatTest, Crc32KnownAnswers) {
  EXPECT_EQ(util::Crc32(BytesFromString("123456789")), 0xcbf43926u);
  EXPECT_EQ(util::Crc32(BytesFromString("The quick brown fox jumps over "
                                        "the lazy dog")),
            0x414fa339u);
}

}  // namespace
}  // namespace mws
