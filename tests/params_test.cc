#include <gtest/gtest.h>

#include "src/math/params.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

struct PresetCase {
  ParamPreset preset;
  size_t qbits;
  size_t pbits;
};

class ParamsPresetTest : public ::testing::TestWithParam<PresetCase> {};

TEST_P(ParamsPresetTest, StructureValid) {
  const TypeAParams& p = GetParams(GetParam().preset);
  DeterministicRandom rng(1);
  EXPECT_EQ(p.q().BitLength(), GetParam().qbits);
  EXPECT_EQ(p.p().BitLength(), GetParam().pbits);
  EXPECT_EQ((p.p() % BigInt(4)).ToDecimal(), "3");
  EXPECT_EQ(p.cofactor() * p.q(), p.p() + BigInt(1));
  EXPECT_TRUE(BigInt::IsProbablePrime(p.p(), rng, 16));
  EXPECT_TRUE(BigInt::IsProbablePrime(p.q(), rng, 16));
}

TEST_P(ParamsPresetTest, GeneratorValid) {
  const TypeAParams& p = GetParams(GetParam().preset);
  EXPECT_TRUE(p.curve().IsOnCurve(p.generator()));
  EXPECT_TRUE(p.curve().ScalarMul(p.q(), p.generator()).is_infinity());
}

TEST_P(ParamsPresetTest, PairingBilinear) {
  const TypeAParams& p = GetParams(GetParam().preset);
  DeterministicRandom rng(2);
  BigInt a = p.RandomScalar(rng);
  BigInt b = p.RandomScalar(rng);
  const EcPoint& g = p.generator();
  Fp2 lhs = p.Pairing(p.curve().ScalarMul(a, g), p.curve().ScalarMul(b, g));
  Fp2 rhs = p.Pairing(g, g).Pow(BigInt::Mod(a * b, p.q()));
  EXPECT_EQ(lhs, rhs);
  EXPECT_FALSE(p.Pairing(g, g).IsOne());
}

TEST_P(ParamsPresetTest, SizesConsistent) {
  const TypeAParams& p = GetParams(GetParam().preset);
  EXPECT_EQ(p.FieldBytes(), GetParam().pbits / 8);
  EXPECT_EQ(p.PointBytes(), 1 + 2 * p.FieldBytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, ParamsPresetTest,
    ::testing::Values(PresetCase{ParamPreset::kSmall, 80, 256},
                      PresetCase{ParamPreset::kTest, 160, 512},
                      PresetCase{ParamPreset::kLarge, 224, 1024}),
    [](const ::testing::TestParamInfo<PresetCase>& info) {
      return "q" + std::to_string(info.param.qbits);
    });

TEST(ParamsTest, PresetNamesDistinct) {
  EXPECT_STRNE(ParamPresetName(ParamPreset::kSmall),
               ParamPresetName(ParamPreset::kTest));
  EXPECT_STRNE(ParamPresetName(ParamPreset::kTest),
               ParamPresetName(ParamPreset::kLarge));
}

TEST(ParamsTest, InstancesAreSingletons) {
  const TypeAParams& a = GetParams(ParamPreset::kSmall);
  const TypeAParams& b = GetParams(ParamPreset::kSmall);
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace mws::math
