#include <gtest/gtest.h>

#include <memory>

#include "src/math/pairing.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

/// Generates one small parameter set per suite run (64/192 bits keeps the
/// whole suite fast) and checks every pairing property on it.
class PairingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DeterministicRandom rng(20100106);
    auto params = TypeAParams::Generate(64, 192, rng);
    ASSERT_TRUE(params.ok()) << params.status();
    params_ = params.value().release();
  }

  const TypeAParams& P() { return *params_; }

  static const TypeAParams* params_;
};

const TypeAParams* PairingTest::params_ = nullptr;

TEST_F(PairingTest, ParameterStructure) {
  DeterministicRandom rng(1);
  EXPECT_EQ((P().p() % BigInt(4)).ToDecimal(), "3");
  EXPECT_EQ(P().cofactor() * P().q(), P().p() + BigInt(1));
  EXPECT_TRUE(BigInt::IsProbablePrime(P().p(), rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(P().q(), rng));
}

TEST_F(PairingTest, GeneratorHasOrderQ) {
  const EcPoint& g = P().generator();
  EXPECT_FALSE(g.is_infinity());
  EXPECT_TRUE(P().curve().IsOnCurve(g));
  EXPECT_TRUE(P().curve().ScalarMul(P().q(), g).is_infinity());
}

TEST_F(PairingTest, PairingIsNonDegenerate) {
  const EcPoint& g = P().generator();
  Fp2 e = P().Pairing(g, g);
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
}

TEST_F(PairingTest, PairingValueHasOrderQ) {
  const EcPoint& g = P().generator();
  Fp2 e = P().Pairing(g, g);
  EXPECT_TRUE(e.Pow(P().q()).IsOne());
}

TEST_F(PairingTest, BilinearInFirstArgument) {
  DeterministicRandom rng(2);
  const EcPoint& g = P().generator();
  BigInt a = P().RandomScalar(rng);
  Fp2 lhs = P().Pairing(P().curve().ScalarMul(a, g), g);
  Fp2 rhs = P().Pairing(g, g).Pow(a);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, BilinearInSecondArgument) {
  DeterministicRandom rng(3);
  const EcPoint& g = P().generator();
  BigInt b = P().RandomScalar(rng);
  Fp2 lhs = P().Pairing(g, P().curve().ScalarMul(b, g));
  Fp2 rhs = P().Pairing(g, g).Pow(b);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, FullBilinearity) {
  DeterministicRandom rng(4);
  const EcPoint& g = P().generator();
  for (int i = 0; i < 5; ++i) {
    BigInt a = P().RandomScalar(rng);
    BigInt b = P().RandomScalar(rng);
    EcPoint ap = P().curve().ScalarMul(a, g);
    EcPoint bp = P().curve().ScalarMul(b, g);
    Fp2 lhs = P().Pairing(ap, bp);
    Fp2 rhs = P().Pairing(g, g).Pow(BigInt::Mod(a * b, P().q()));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_F(PairingTest, TheBonehFranklinKeyAgreementIdentity) {
  // The identity the paper's protocol relies on: e(rP, sQ) == e(sP, rQ),
  // i.e. the RC with private key sI and the SD with randomness r derive
  // the same symmetric key.
  DeterministicRandom rng(5);
  const EcPoint& g = P().generator();
  BigInt r = P().RandomScalar(rng);
  BigInt s = P().RandomScalar(rng);
  EcPoint q_id = P().RandomPoint(rng);

  // SD computes e(sP, Q_ID)^r.
  EcPoint s_p = P().curve().ScalarMul(s, g);
  Fp2 sender_key = P().Pairing(s_p, q_id).Pow(r);
  // RC computes e(rP, sQ_ID).
  EcPoint r_p = P().curve().ScalarMul(r, g);
  EcPoint s_q = P().curve().ScalarMul(s, q_id);
  Fp2 receiver_key = P().Pairing(r_p, s_q);
  EXPECT_EQ(sender_key, receiver_key);
}

TEST_F(PairingTest, InfinityInputsGiveOne) {
  const EcPoint& g = P().generator();
  EXPECT_TRUE(P().Pairing(EcPoint::Infinity(), g).IsOne());
  EXPECT_TRUE(P().Pairing(g, EcPoint::Infinity()).IsOne());
}

TEST_F(PairingTest, PairingWithNegatedPointIsInverse) {
  DeterministicRandom rng(6);
  const EcPoint& g = P().generator();
  EcPoint q = P().RandomPoint(rng);
  Fp2 e = P().Pairing(g, q);
  Fp2 e_neg = P().Pairing(g, P().curve().Negate(q));
  EXPECT_TRUE((e * e_neg).IsOne());
}

TEST_F(PairingTest, DistinctPointsDistinctValues) {
  DeterministicRandom rng(7);
  const EcPoint& g = P().generator();
  EcPoint q1 = P().RandomPoint(rng);
  EcPoint q2 = P().RandomPoint(rng);
  if (q1 == q2) return;  // negligible
  EXPECT_NE(P().Pairing(g, q1), P().Pairing(g, q2));
}

TEST_F(PairingTest, MillerPlusFinalExpEqualsPairing) {
  DeterministicRandom rng(8);
  EcPoint a = P().RandomPoint(rng);
  EcPoint b = P().RandomPoint(rng);
  EXPECT_EQ(P().FinalExponentiation(P().MillerLoop(a, b)), P().Pairing(a, b));
}

TEST_F(PairingTest, LiftXProducesOrderQPoints) {
  DeterministicRandom rng(9);
  int produced = 0;
  for (int i = 0; i < 20 && produced < 5; ++i) {
    Fp x = Fp::FromBigInt(P().ctx(), BigInt::RandomBelow(rng, P().p()));
    auto point = P().LiftX(x);
    if (!point.ok()) continue;
    ++produced;
    EXPECT_TRUE(P().curve().IsOnCurve(point.value()));
    EXPECT_TRUE(
        P().curve().ScalarMul(P().q(), point.value()).is_infinity());
  }
  EXPECT_GE(produced, 1);
}

TEST_F(PairingTest, RandomScalarInRange) {
  DeterministicRandom rng(10);
  for (int i = 0; i < 50; ++i) {
    BigInt s = P().RandomScalar(rng);
    EXPECT_TRUE(s >= BigInt(1));
    EXPECT_TRUE(s < P().q());
  }
}

TEST_F(PairingTest, CreateValidatesInputs) {
  DeterministicRandom rng(11);
  // Wrong q (does not divide p+1).
  auto bad = TypeAParams::Create(P().p(), P().q() + BigInt(2),
                                 P().generator().x().ToBigInt(),
                                 P().generator().y().ToBigInt(), rng);
  EXPECT_FALSE(bad.ok());
  // Good parameters round-trip.
  auto good = TypeAParams::Create(P().p(), P().q(),
                                  P().generator().x().ToBigInt(),
                                  P().generator().y().ToBigInt(), rng);
  EXPECT_TRUE(good.ok()) << good.status();
}

TEST_F(PairingTest, CreateRejectsOffCurveGenerator) {
  DeterministicRandom rng(12);
  auto bad = TypeAParams::Create(P().p(), P().q(), BigInt(12345),
                                 BigInt(67890), rng);
  EXPECT_FALSE(bad.ok());
}

// --- Fast-path (v2 engine) vs reference-path equivalence. Miller values
// differ between the two loops by a factor in F_p*, which the final
// exponentiation erases, so equality is asserted on full pairings and
// is bit-for-bit (all field ops produce canonical residues).

TEST_F(PairingTest, RecodingsReconstructTheirIntegers) {
  // q_naf: digits in {-1, 0, 1}, sum d_i * 2^i == q.
  BigInt acc(0);
  for (size_t i = P().q_naf().size(); i-- > 0;) {
    int8_t d = P().q_naf()[i];
    ASSERT_TRUE(d >= -1 && d <= 1);
    acc = (acc << 1) + BigInt(static_cast<int64_t>(d));
  }
  EXPECT_EQ(acc, P().q());
  // cofactor_wnaf: digits zero or odd in [-15, 15], sum == h.
  acc = BigInt(0);
  for (size_t i = P().cofactor_wnaf().size(); i-- > 0;) {
    int8_t d = P().cofactor_wnaf()[i];
    ASSERT_TRUE(d >= -15 && d <= 15);
    ASSERT_TRUE(d == 0 || (d & 1) != 0);
    acc = (acc << 1) + BigInt(static_cast<int64_t>(d));
  }
  EXPECT_EQ(acc, P().cofactor());
}

TEST_F(PairingTest, FastPairingMatchesReferenceOnRandomPoints) {
  DeterministicRandom rng(13);
  for (int i = 0; i < 8; ++i) {
    EcPoint a = P().RandomPoint(rng);
    EcPoint b = P().RandomPoint(rng);
    EXPECT_EQ(P().Pairing(a, b), P().PairingReference(a, b)) << i;
  }
}

TEST_F(PairingTest, FastPairingMatchesReferenceOnEdgeCases) {
  DeterministicRandom rng(14);
  EcPoint a = P().RandomPoint(rng);
  EcPoint inf = EcPoint::Infinity();
  EXPECT_EQ(P().Pairing(inf, a), P().PairingReference(inf, a));
  EXPECT_EQ(P().Pairing(a, inf), P().PairingReference(a, inf));
  EXPECT_EQ(P().Pairing(inf, inf), P().PairingReference(inf, inf));
  EXPECT_TRUE(P().Pairing(inf, a).IsOne());
  // Degenerate chords: P == Q and P == -Q in both slots.
  EXPECT_EQ(P().Pairing(a, a), P().PairingReference(a, a));
  EcPoint na = P().curve().Negate(a);
  EXPECT_EQ(P().Pairing(a, na), P().PairingReference(a, na));
  // The 2-torsion point (0, 0) lies on y^2 = x^3 + x but not in the
  // order-q subgroup; both loops must still agree through their
  // degenerate-branch handling.
  const FpCtx* ctx = P().ctx();
  EcPoint two_torsion(Fp::Zero(ctx), Fp::Zero(ctx));
  ASSERT_TRUE(P().curve().IsOnCurve(two_torsion));
  EXPECT_EQ(P().Pairing(two_torsion, a),
            P().PairingReference(two_torsion, a));
  EXPECT_EQ(P().Pairing(a, two_torsion),
            P().PairingReference(a, two_torsion));
}

TEST_F(PairingTest, NafMillerLoopDiffersOnlyByFinalExponentiation) {
  DeterministicRandom rng(15);
  EcPoint a = P().RandomPoint(rng);
  EcPoint b = P().RandomPoint(rng);
  EXPECT_EQ(P().FinalExponentiation(P().MillerLoopNaf(a, b)),
            P().FinalExponentiation(P().MillerLoop(a, b)));
}

TEST_F(PairingTest, FinalExponentiationMatchesReference) {
  DeterministicRandom rng(16);
  for (int i = 0; i < 6; ++i) {
    Fp2 z = P().MillerLoop(P().RandomPoint(rng), P().RandomPoint(rng));
    if (z.IsZero() || z.IsOne()) continue;
    EXPECT_EQ(P().FinalExponentiation(z),
              P().FinalExponentiationReference(z)) << i;
  }
  // Short-circuit paths: 0 and 1 pass through (the reference cannot
  // invert zero, so only the identity case is cross-checked).
  const FpCtx* ctx = P().ctx();
  EXPECT_TRUE(P().FinalExponentiation(Fp2::One(ctx)).IsOne());
  EXPECT_EQ(P().FinalExponentiation(Fp2::One(ctx)),
            P().FinalExponentiationReference(Fp2::One(ctx)));
  EXPECT_TRUE(P().FinalExponentiation(Fp2::Zero(ctx)).IsZero());
}

TEST_F(PairingTest, BatchedFinalExponentiationMatchesSingle) {
  DeterministicRandom rng(17);
  std::vector<Fp2> zs;
  for (int i = 0; i < 5; ++i) {
    zs.push_back(P().MillerLoop(P().RandomPoint(rng), P().RandomPoint(rng)));
  }
  // Degenerate entries interleaved mid-batch.
  zs.insert(zs.begin() + 2, Fp2::One(P().ctx()));
  zs.insert(zs.begin() + 4, Fp2::Zero(P().ctx()));
  std::vector<Fp2> batched = P().FinalExponentiationMany(zs);
  ASSERT_EQ(batched.size(), zs.size());
  for (size_t i = 0; i < zs.size(); ++i) {
    EXPECT_EQ(batched[i], P().FinalExponentiation(zs[i])) << i;
  }
  EXPECT_TRUE(P().FinalExponentiationMany({}).empty());
}

TEST_F(PairingTest, PairingProductMatchesIndividualPairings) {
  DeterministicRandom rng(18);
  const FpCtx* ctx = P().ctx();
  // Empty product is 1.
  EXPECT_TRUE(P().PairingProduct({}).IsOne());
  // 1..3 live terms.
  std::vector<PairingTerm> terms;
  Fp2 prod = Fp2::One(ctx);
  for (int k = 0; k < 3; ++k) {
    EcPoint a = P().RandomPoint(rng);
    EcPoint b = P().RandomPoint(rng);
    terms.push_back({nullptr, a, b});
    prod = prod * P().Pairing(a, b);
    // Bit-identical to the product of individual pairings at every size.
    EXPECT_EQ(P().PairingProduct(terms), prod) << k;
  }
  // Terms with an infinity point contribute exactly 1.
  std::vector<PairingTerm> with_inf = terms;
  with_inf.push_back({nullptr, EcPoint::Infinity(), P().RandomPoint(rng)});
  with_inf.push_back({nullptr, P().RandomPoint(rng), EcPoint::Infinity()});
  EXPECT_EQ(P().PairingProduct(with_inf), prod);
  // Precomputed terms (cached generator lines) mix with live terms.
  std::vector<PairingTerm> mixed;
  EcPoint q1 = P().RandomPoint(rng);
  EcPoint q2 = P().RandomPoint(rng);
  mixed.push_back({&P().generator_pairing(), EcPoint::Infinity(), q1});
  mixed.push_back({nullptr, q2, P().generator()});
  Fp2 mixed_expected =
      P().Pairing(P().generator(), q1) * P().Pairing(q2, P().generator());
  EXPECT_EQ(P().PairingProduct(mixed), mixed_expected);
}

}  // namespace
}  // namespace mws::math
