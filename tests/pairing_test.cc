#include <gtest/gtest.h>

#include <memory>

#include "src/math/pairing.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

/// Generates one small parameter set per suite run (64/192 bits keeps the
/// whole suite fast) and checks every pairing property on it.
class PairingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DeterministicRandom rng(20100106);
    auto params = TypeAParams::Generate(64, 192, rng);
    ASSERT_TRUE(params.ok()) << params.status();
    params_ = params.value().release();
  }

  const TypeAParams& P() { return *params_; }

  static const TypeAParams* params_;
};

const TypeAParams* PairingTest::params_ = nullptr;

TEST_F(PairingTest, ParameterStructure) {
  DeterministicRandom rng(1);
  EXPECT_EQ((P().p() % BigInt(4)).ToDecimal(), "3");
  EXPECT_EQ(P().cofactor() * P().q(), P().p() + BigInt(1));
  EXPECT_TRUE(BigInt::IsProbablePrime(P().p(), rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(P().q(), rng));
}

TEST_F(PairingTest, GeneratorHasOrderQ) {
  const EcPoint& g = P().generator();
  EXPECT_FALSE(g.is_infinity());
  EXPECT_TRUE(P().curve().IsOnCurve(g));
  EXPECT_TRUE(P().curve().ScalarMul(P().q(), g).is_infinity());
}

TEST_F(PairingTest, PairingIsNonDegenerate) {
  const EcPoint& g = P().generator();
  Fp2 e = P().Pairing(g, g);
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
}

TEST_F(PairingTest, PairingValueHasOrderQ) {
  const EcPoint& g = P().generator();
  Fp2 e = P().Pairing(g, g);
  EXPECT_TRUE(e.Pow(P().q()).IsOne());
}

TEST_F(PairingTest, BilinearInFirstArgument) {
  DeterministicRandom rng(2);
  const EcPoint& g = P().generator();
  BigInt a = P().RandomScalar(rng);
  Fp2 lhs = P().Pairing(P().curve().ScalarMul(a, g), g);
  Fp2 rhs = P().Pairing(g, g).Pow(a);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, BilinearInSecondArgument) {
  DeterministicRandom rng(3);
  const EcPoint& g = P().generator();
  BigInt b = P().RandomScalar(rng);
  Fp2 lhs = P().Pairing(g, P().curve().ScalarMul(b, g));
  Fp2 rhs = P().Pairing(g, g).Pow(b);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, FullBilinearity) {
  DeterministicRandom rng(4);
  const EcPoint& g = P().generator();
  for (int i = 0; i < 5; ++i) {
    BigInt a = P().RandomScalar(rng);
    BigInt b = P().RandomScalar(rng);
    EcPoint ap = P().curve().ScalarMul(a, g);
    EcPoint bp = P().curve().ScalarMul(b, g);
    Fp2 lhs = P().Pairing(ap, bp);
    Fp2 rhs = P().Pairing(g, g).Pow(BigInt::Mod(a * b, P().q()));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_F(PairingTest, TheBonehFranklinKeyAgreementIdentity) {
  // The identity the paper's protocol relies on: e(rP, sQ) == e(sP, rQ),
  // i.e. the RC with private key sI and the SD with randomness r derive
  // the same symmetric key.
  DeterministicRandom rng(5);
  const EcPoint& g = P().generator();
  BigInt r = P().RandomScalar(rng);
  BigInt s = P().RandomScalar(rng);
  EcPoint q_id = P().RandomPoint(rng);

  // SD computes e(sP, Q_ID)^r.
  EcPoint s_p = P().curve().ScalarMul(s, g);
  Fp2 sender_key = P().Pairing(s_p, q_id).Pow(r);
  // RC computes e(rP, sQ_ID).
  EcPoint r_p = P().curve().ScalarMul(r, g);
  EcPoint s_q = P().curve().ScalarMul(s, q_id);
  Fp2 receiver_key = P().Pairing(r_p, s_q);
  EXPECT_EQ(sender_key, receiver_key);
}

TEST_F(PairingTest, InfinityInputsGiveOne) {
  const EcPoint& g = P().generator();
  EXPECT_TRUE(P().Pairing(EcPoint::Infinity(), g).IsOne());
  EXPECT_TRUE(P().Pairing(g, EcPoint::Infinity()).IsOne());
}

TEST_F(PairingTest, PairingWithNegatedPointIsInverse) {
  DeterministicRandom rng(6);
  const EcPoint& g = P().generator();
  EcPoint q = P().RandomPoint(rng);
  Fp2 e = P().Pairing(g, q);
  Fp2 e_neg = P().Pairing(g, P().curve().Negate(q));
  EXPECT_TRUE((e * e_neg).IsOne());
}

TEST_F(PairingTest, DistinctPointsDistinctValues) {
  DeterministicRandom rng(7);
  const EcPoint& g = P().generator();
  EcPoint q1 = P().RandomPoint(rng);
  EcPoint q2 = P().RandomPoint(rng);
  if (q1 == q2) return;  // negligible
  EXPECT_NE(P().Pairing(g, q1), P().Pairing(g, q2));
}

TEST_F(PairingTest, MillerPlusFinalExpEqualsPairing) {
  DeterministicRandom rng(8);
  EcPoint a = P().RandomPoint(rng);
  EcPoint b = P().RandomPoint(rng);
  EXPECT_EQ(P().FinalExponentiation(P().MillerLoop(a, b)), P().Pairing(a, b));
}

TEST_F(PairingTest, LiftXProducesOrderQPoints) {
  DeterministicRandom rng(9);
  int produced = 0;
  for (int i = 0; i < 20 && produced < 5; ++i) {
    Fp x = Fp::FromBigInt(P().ctx(), BigInt::RandomBelow(rng, P().p()));
    auto point = P().LiftX(x);
    if (!point.ok()) continue;
    ++produced;
    EXPECT_TRUE(P().curve().IsOnCurve(point.value()));
    EXPECT_TRUE(
        P().curve().ScalarMul(P().q(), point.value()).is_infinity());
  }
  EXPECT_GE(produced, 1);
}

TEST_F(PairingTest, RandomScalarInRange) {
  DeterministicRandom rng(10);
  for (int i = 0; i < 50; ++i) {
    BigInt s = P().RandomScalar(rng);
    EXPECT_TRUE(s >= BigInt(1));
    EXPECT_TRUE(s < P().q());
  }
}

TEST_F(PairingTest, CreateValidatesInputs) {
  DeterministicRandom rng(11);
  // Wrong q (does not divide p+1).
  auto bad = TypeAParams::Create(P().p(), P().q() + BigInt(2),
                                 P().generator().x().ToBigInt(),
                                 P().generator().y().ToBigInt(), rng);
  EXPECT_FALSE(bad.ok());
  // Good parameters round-trip.
  auto good = TypeAParams::Create(P().p(), P().q(),
                                  P().generator().x().ToBigInt(),
                                  P().generator().y().ToBigInt(), rng);
  EXPECT_TRUE(good.ok()) << good.status();
}

TEST_F(PairingTest, CreateRejectsOffCurveGenerator) {
  DeterministicRandom rng(12);
  auto bad = TypeAParams::Create(P().p(), P().q(), BigInt(12345),
                                 BigInt(67890), rng);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace mws::math
