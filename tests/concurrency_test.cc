// Concurrency tests for the parallel request path: the striped-lock
// KvStore, MessageDb's atomic id allocation, and the full MWS/PKG
// protocol under multi-threaded load over real TCP. Designed to run
// under -DMWSIBE_SANITIZE=thread as well as plain builds.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/crypto/rsa.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/store/message_db.h"
#include "src/wire/auth.h"
#include "src/wire/tcp.h"

namespace mws {
namespace {

using util::Bytes;
using util::BytesFromString;

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("mwsibe_conc_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

// --- KvStore striped locking ---

TEST(KvStoreConcurrencyTest, ParallelWritersDisjointKeys) {
  auto store = store::KvStore::Open({.path = ""}).value();
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key =
            "w/" + std::to_string(t) + "/" + std::to_string(i);
        ASSERT_TRUE(store->Put(key, BytesFromString(key)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store->Size(), static_cast<size_t>(kThreads * kKeysPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      std::string key = "w/" + std::to_string(t) + "/" + std::to_string(i);
      auto value = store->Get(key);
      ASSERT_TRUE(value.ok()) << key;
      EXPECT_EQ(value.value(), BytesFromString(key));
    }
  }
}

TEST(KvStoreConcurrencyTest, ReadersScanWhileWritersMutate) {
  auto store = store::KvStore::Open({.path = ""}).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        store->Put("base/" + std::to_string(i), BytesFromString("v")).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        // The 100 pre-seeded keys are immutable during the test; every
        // snapshot must contain all of them regardless of writer churn.
        EXPECT_GE(store->CountPrefix("base/"), 100u);
        EXPECT_GE(store->ScanKeys("base/").size(), 100u);
        auto rows = store->Scan("hot/");
        for (const auto& [key, value] : rows) {
          EXPECT_EQ(value, BytesFromString("hot"));
        }
        ++scans;
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 300; ++i) {
        std::string key =
            "hot/" + std::to_string(w) + "/" + std::to_string(i % 25);
        ASSERT_TRUE(store->Put(key, BytesFromString("hot")).ok());
        if (i % 3 == 0) {
          ASSERT_TRUE(store->Delete(key).ok());
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(scans.load(), 0u);
  EXPECT_EQ(store->CountPrefix("base/"), 100u);
}

TEST(KvStoreConcurrencyTest, ParallelWritesSurviveRecovery) {
  std::string path = TempPath("kvrecover");
  store::KvStore::RemoveFiles(path);
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 100;
  {
    auto store = store::KvStore::Open({.path = path}).value();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kKeysPerThread; ++i) {
          std::string key =
              "r/" + std::to_string(t) + "/" + std::to_string(i);
          ASSERT_TRUE(store->Put(key, BytesFromString(key)).ok());
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_TRUE(store->Flush().ok());
  }
  auto reopened = store::KvStore::Open({.path = path}).value();
  EXPECT_EQ(reopened->Size(),
            static_cast<size_t>(kThreads * kKeysPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      std::string key = "r/" + std::to_string(t) + "/" + std::to_string(i);
      auto value = reopened->Get(key);
      ASSERT_TRUE(value.ok()) << key;
      EXPECT_EQ(value.value(), BytesFromString(key));
    }
  }
  store::KvStore::RemoveFiles(path);
}

// --- MessageDb id allocation ---

TEST(MessageDbConcurrencyTest, ConcurrentAppendsYieldUniqueSequentialIds) {
  auto store = store::KvStore::Open({.path = ""}).value();
  store::MessageDb db(store.get());
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 50;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        store::StoredMessage m;
        m.u = Bytes(8, 1);
        m.ciphertext = Bytes(8, 2);
        m.attribute = "CONC-" + std::to_string(t);
        m.nonce = Bytes(16, 3);
        m.device_id = "SD";
        auto id = db.Append(m);
        ASSERT_TRUE(id.ok());
        ids[t].push_back(id.value());
      }
    });
  }
  for (auto& t : threads) t.join();

  std::set<uint64_t> all;
  for (const auto& lane : ids) all.insert(lane.begin(), lane.end());
  // No lost or duplicated ids, densely allocated from 1.
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kAppendsPerThread));
  EXPECT_EQ(*all.begin(), 1u);
  EXPECT_EQ(*all.rbegin(), static_cast<uint64_t>(kThreads * kAppendsPerThread));
  EXPECT_EQ(db.Count(), all.size());

  // A fresh MessageDb over the same table (recovery path) continues the
  // sequence instead of reusing ids.
  store::MessageDb recovered(store.get());
  store::StoredMessage m;
  m.u = Bytes(8, 1);
  m.ciphertext = Bytes(8, 2);
  m.attribute = "CONC-0";
  m.nonce = Bytes(16, 3);
  m.device_id = "SD";
  EXPECT_EQ(recovered.Append(m).value(),
            static_cast<uint64_t>(kThreads * kAppendsPerThread) + 1);
}

// --- Full protocol stress over TCP ---

/// Routes mws.* / pkg.* to the two servers, as deployed.
class EndpointMux : public wire::Transport {
 public:
  EndpointMux(wire::Transport* mws, wire::Transport* pkg)
      : mws_(mws), pkg_(pkg) {}
  util::Result<Bytes> Call(const std::string& endpoint,
                           const Bytes& request) override {
    if (endpoint.rfind("pkg.", 0) == 0) return pkg_->Call(endpoint, request);
    return mws_->Call(endpoint, request);
  }

 private:
  wire::Transport* mws_;
  wire::Transport* pkg_;
};

TEST(ServiceConcurrencyTest, DepositorsAndRetrieversOverTcp) {
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kDepositsPerWriter = 20;
  const std::string kAttribute = "STRESS-ATTR";

  std::string path = TempPath("stress");
  store::KvStore::RemoveFiles(path);

  util::SimulatedClock clock(1'000'000'000);
  util::DeterministicRandom setup_rng(7);
  Bytes service_key(32, 0x3c);
  uint64_t total_deposits = 0;

  {
    auto storage = store::KvStore::Open({.path = path}).value();
    mws::MwsService warehouse(storage.get(), service_key, &clock,
                              &setup_rng);
    pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                        service_key, &clock, &setup_rng);

    wire::InProcessTransport mws_backend, pkg_backend;
    warehouse.RegisterEndpoints(&mws_backend);
    pkg.RegisterEndpoints(&pkg_backend);
    wire::TcpServer::Options server_options;
    server_options.worker_threads = kWriters + kReaders;
    auto mws_server =
        wire::TcpServer::Start(&mws_backend, 0, server_options).value();
    auto pkg_server =
        wire::TcpServer::Start(&pkg_backend, 0, server_options).value();

    std::vector<Bytes> mac_keys;
    for (int w = 0; w < kWriters; ++w) {
      mac_keys.push_back(Bytes(32, static_cast<uint8_t>(w + 1)));
      ASSERT_TRUE(
          warehouse.RegisterDevice("SD-" + std::to_string(w), mac_keys[w])
              .ok());
    }
    std::vector<crypto::RsaKeyPair> rc_keys;
    for (int r = 0; r < kReaders; ++r) {
      rc_keys.push_back(crypto::RsaGenerateKeyPair(768, setup_rng).value());
      std::string identity = "RC-" + std::to_string(r);
      ASSERT_TRUE(warehouse
                      .RegisterReceivingClient(
                          identity, wire::HashPassword("pw"),
                          crypto::SerializeRsaPublicKey(
                              rc_keys[r].public_key))
                      .ok());
      ASSERT_TRUE(warehouse.GrantAttribute(identity, kAttribute).ok());
    }

    std::atomic<bool> writers_done{false};
    std::vector<std::vector<uint64_t>> deposited_ids(kWriters);
    std::vector<std::set<uint64_t>> seen_ids(kReaders);
    std::vector<std::thread> threads;

    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        util::DeterministicRandom rng(100 + w);
        wire::TcpClientTransport conn("127.0.0.1", mws_server->port());
        client::SmartDevice device("SD-" + std::to_string(w), mac_keys[w],
                                   pkg.PublicParams(),
                                   crypto::CipherKind::kDes, &conn, &clock,
                                   &rng);
        for (int i = 0; i < kDepositsPerWriter; ++i) {
          auto id = device.DepositMessage(
              kAttribute, BytesFromString("m-" + std::to_string(w) + "-" +
                                          std::to_string(i)));
          ASSERT_TRUE(id.ok()) << id.status();
          deposited_ids[w].push_back(id.value());
        }
      });
    }
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        util::DeterministicRandom rng(200 + r);
        wire::TcpClientTransport mws_conn("127.0.0.1", mws_server->port());
        wire::TcpClientTransport pkg_conn("127.0.0.1", pkg_server->port());
        EndpointMux mux(&mws_conn, &pkg_conn);
        client::ReceivingClient rc("RC-" + std::to_string(r), "pw",
                                   rc_keys[r], pkg.PublicParams(),
                                   crypto::CipherKind::kDes,
                                   crypto::CipherKind::kDes, &mux, &clock,
                                   &rng);
        uint64_t after_id = 0;
        // Poll while the writers run, then one final drain so every
        // reader observes the complete warehouse.
        do {
          bool done = writers_done.load();
          auto messages = rc.FetchAndDecrypt(after_id);
          ASSERT_TRUE(messages.ok()) << messages.status();
          for (const auto& m : messages.value()) {
            // The incremental watermark must never hand out duplicates.
            EXPECT_TRUE(seen_ids[r].insert(m.message_id).second)
                << "duplicate message id " << m.message_id;
            after_id = std::max(after_id, m.message_id);
          }
          if (done) break;
        } while (true);
      });
    }

    for (int w = 0; w < kWriters; ++w) threads[w].join();
    writers_done.store(true);
    for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

    // No lost or duplicate ids across writers.
    std::set<uint64_t> all_ids;
    for (const auto& lane : deposited_ids) {
      for (uint64_t id : lane) {
        EXPECT_TRUE(all_ids.insert(id).second) << "duplicate id " << id;
      }
    }
    total_deposits = kWriters * kDepositsPerWriter;
    EXPECT_EQ(all_ids.size(), total_deposits);
    // Every reader decrypted every message exactly once.
    for (int r = 0; r < kReaders; ++r) {
      EXPECT_EQ(seen_ids[r], all_ids) << "reader " << r;
    }
    ASSERT_TRUE(storage->Flush().ok());
    mws_server->Shutdown();
    pkg_server->Shutdown();
  }

  // Clean recovery: reopen the store, the warehouse is intact and the id
  // sequence continues past everything deposited concurrently.
  auto reopened = store::KvStore::Open({.path = path}).value();
  store::MessageDb db(reopened.get());
  EXPECT_EQ(db.Count(), total_deposits);
  auto visible = db.FindByAttribute(kAttribute);
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(visible->size(), total_deposits);
  store::StoredMessage m;
  m.u = Bytes(8, 1);
  m.ciphertext = Bytes(8, 2);
  m.attribute = kAttribute;
  m.nonce = Bytes(16, 3);
  m.device_id = "SD-0";
  EXPECT_GT(db.Append(m).value(), total_deposits);
  store::KvStore::RemoveFiles(path);
}

}  // namespace
}  // namespace mws
