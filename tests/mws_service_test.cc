// Component-level tests for the MWS service (SDA, Gatekeeper, MMS, Token
// Generator) and the PKG, exercised below the full-protocol level.

#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/crypto/modes.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sealed_box.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/util/clock.h"
#include "src/wire/auth.h"

namespace mws::mws {
namespace {

using util::Bytes;
using util::BytesFromString;

class MwsServiceTest : public ::testing::Test {
 protected:
  MwsServiceTest()
      : storage_(store::KvStore::Open({.path = ""}).value()),
        clock_(1'000'000'000),
        rng_(7),
        mws_pkg_key_(Bytes(32, 0x5a)),
        service_(storage_.get(), mws_pkg_key_, &clock_, &rng_) {}

  /// Registers an RC with password "pw" and a tiny RSA key.
  crypto::RsaKeyPair RegisterRc(const std::string& identity) {
    auto keys = crypto::RsaGenerateKeyPair(768, rng_).value();
    EXPECT_TRUE(service_
                    .RegisterReceivingClient(
                        identity, wire::HashPassword("pw"),
                        crypto::SerializeRsaPublicKey(keys.public_key))
                    .ok());
    return keys;
  }

  wire::RcAuthRequest MakeAuthRequest(const std::string& identity,
                                      const crypto::RsaKeyPair& keys,
                                      const std::string& password = "pw") {
    wire::RcAuthPlain plain;
    plain.rc_identity = identity;
    plain.timestamp_micros = clock_.NowMicros();
    plain.client_nonce = rng_.Generate(16);
    Bytes key = wire::DeriveAuthKey(wire::HashPassword(password),
                                    crypto::CipherKind::kDes);
    wire::RcAuthRequest request;
    request.rc_identity = identity;
    request.rsa_public_key = crypto::SerializeRsaPublicKey(keys.public_key);
    request.auth_ciphertext =
        crypto::CbcEncrypt(crypto::CipherKind::kDes, key, plain.Encode(),
                           rng_)
            .value();
    return request;
  }

  std::unique_ptr<store::KvStore> storage_;
  util::SimulatedClock clock_;
  util::DeterministicRandom rng_;
  Bytes mws_pkg_key_;
  MwsService service_;
};

TEST_F(MwsServiceTest, AdminValidation) {
  EXPECT_FALSE(service_.RegisterDevice("", Bytes(32, 1)).ok());
  EXPECT_FALSE(service_.RegisterDevice("SD", {}).ok());
  EXPECT_TRUE(service_.RegisterDevice("SD", Bytes(32, 1)).ok());
  EXPECT_FALSE(service_.RegisterDevice("SD", Bytes(32, 2)).ok());

  EXPECT_FALSE(
      service_.RegisterReceivingClient("", Bytes(32, 1), {}).ok());
  // Granting to an unregistered RC fails.
  EXPECT_TRUE(service_.GrantAttribute("GHOST", "A1").status().IsNotFound());
}

TEST_F(MwsServiceTest, GrantValidatesAttributeGrammar) {
  RegisterRc("RC1");
  EXPECT_FALSE(service_.GrantAttribute("RC1", "lower case").ok());
  EXPECT_TRUE(service_.GrantAttribute("RC1", "ELECTRIC-A").ok());
}

TEST_F(MwsServiceTest, PolicyTableMirrorsGrants) {
  RegisterRc("RC1");
  RegisterRc("RC2");
  service_.GrantAttribute("RC1", "A1").value();
  service_.GrantAttribute("RC2", "A1").value();
  auto table = service_.PolicyTable().value();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_NE(table[0].aid, table[1].aid);
  EXPECT_TRUE(service_.RevokeAttribute("RC1", "A1").ok());
  EXPECT_EQ(service_.PolicyTable().value().size(), 1u);
}

TEST_F(MwsServiceTest, DepositRequiresValidAttribute) {
  // Bypass the SDA by building a valid MAC, then check attribute policing.
  Bytes mac_key(32, 9);
  ASSERT_TRUE(service_.RegisterDevice("SD-1", mac_key).ok());
  wire::DepositRequest request;
  request.u = BytesFromString("u");
  request.ciphertext = BytesFromString("c");
  request.attribute = "bad attribute!";
  request.nonce = Bytes(16, 0);
  request.device_id = "SD-1";
  request.timestamp_micros = clock_.NowMicros();
  request.mac = crypto::HmacSha256(mac_key, request.AuthenticatedBytes());
  EXPECT_TRUE(service_.Deposit(request).status().IsInvalidArgument());
}

TEST_F(MwsServiceTest, GatekeeperSessionLifecycle) {
  auto keys = RegisterRc("RC1");
  auto response = service_.Authenticate(MakeAuthRequest("RC1", keys));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(service_.gatekeeper().ActiveSessions(), 1u);

  auto session = service_.gatekeeper().GetSession(response->session_id);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->rc_identity, "RC1");

  // Session expires with the freshness window.
  clock_.AdvanceMicros(service_.options().freshness_window_micros + 1);
  EXPECT_FALSE(service_.gatekeeper().GetSession(response->session_id).ok());

  service_.gatekeeper().CloseSession(response->session_id);
  EXPECT_EQ(service_.gatekeeper().ActiveSessions(), 0u);
}

TEST_F(MwsServiceTest, GatekeeperGarbageCollectsExpiredSessions) {
  auto keys = RegisterRc("RC1");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service_.Authenticate(MakeAuthRequest("RC1", keys)).ok());
    clock_.AdvanceMicros(1000);  // distinct replay-cache entries
  }
  EXPECT_EQ(service_.gatekeeper().ActiveSessions(), 5u);
  // After the freshness window passes, the next authentication sweeps
  // all expired sessions.
  clock_.AdvanceMicros(service_.options().freshness_window_micros + 1);
  ASSERT_TRUE(service_.Authenticate(MakeAuthRequest("RC1", keys)).ok());
  EXPECT_EQ(service_.gatekeeper().ActiveSessions(), 1u);
}

TEST_F(MwsServiceTest, PkgGarbageCollectsExpiredSessions) {
  auto keys = RegisterRc("RC1");
  service_.GrantAttribute("RC1", "A1").value();
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      mws_pkg_key_, &clock_, &rng_);
  auto grants = service_.mms().GrantsFor("RC1").value();
  auto authenticate = [&] {
    auto token = service_.token_generator()
                     .IssueToken("RC1",
                                 crypto::SerializeRsaPublicKey(keys.public_key),
                                 grants)
                     .value();
    auto token_bytes = crypto::OpenSealedBox(
        keys.private_key, crypto::CipherKind::kDes, token);
    auto token_plain = wire::TokenPlain::Decode(token_bytes.value()).value();
    wire::AuthenticatorPlain auth{"RC1", clock_.NowMicros()};
    Bytes auth_key =
        wire::DeriveChannelKey(token_plain.session_key,
                               crypto::CipherKind::kDes,
                               "rc-pkg-authenticator");
    wire::PkgAuthRequest request;
    request.rc_identity = "RC1";
    request.ticket = token_plain.ticket;
    request.authenticator =
        crypto::CbcEncrypt(crypto::CipherKind::kDes, auth_key, auth.Encode(),
                           rng_)
            .value();
    ASSERT_TRUE(pkg.Authenticate(request).ok());
  };
  for (int i = 0; i < 3; ++i) {
    authenticate();
    clock_.AdvanceMicros(1000);
  }
  EXPECT_EQ(pkg.ActiveSessions(), 3u);
  clock_.AdvanceMicros(pkg::PkgOptions{}.session_lifetime_micros + 1);
  authenticate();
  EXPECT_EQ(pkg.ActiveSessions(), 1u);
}

TEST_F(MwsServiceTest, GatekeeperRejectsWrongPassword) {
  auto keys = RegisterRc("RC1");
  auto bad = service_.Authenticate(MakeAuthRequest("RC1", keys, "wrong"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsUnauthenticated());
}

TEST_F(MwsServiceTest, GatekeeperRejectsIdentityMismatchInsideChallenge) {
  auto keys1 = RegisterRc("RC1");
  RegisterRc("RC2");
  // Challenge encrypted under RC1's password but claiming RC2 outside.
  wire::RcAuthRequest request = MakeAuthRequest("RC1", keys1);
  request.rc_identity = "RC2";
  EXPECT_FALSE(service_.Authenticate(request).ok());
}

TEST_F(MwsServiceTest, GatekeeperRejectsStaleChallenge) {
  auto keys = RegisterRc("RC1");
  wire::RcAuthRequest request = MakeAuthRequest("RC1", keys);
  clock_.AdvanceMicros(service_.options().freshness_window_micros + 1);
  EXPECT_FALSE(service_.Authenticate(request).ok());
}

TEST_F(MwsServiceTest, TokenRoundTripsThroughPkg) {
  // The MWS-issued token must authenticate at a PKG sharing the key.
  auto keys = RegisterRc("RC1");
  service_.GrantAttribute("RC1", "A1").value();

  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      mws_pkg_key_, &clock_, &rng_);
  auto grants = service_.mms().GrantsFor("RC1").value();
  auto token = service_.token_generator().IssueToken(
      "RC1", crypto::SerializeRsaPublicKey(keys.public_key), grants);
  ASSERT_TRUE(token.ok()) << token.status();

  // RC opens the token.
  auto token_bytes = crypto::OpenSealedBox(
      keys.private_key, crypto::CipherKind::kDes, token.value());
  ASSERT_TRUE(token_bytes.ok());
  auto token_plain = wire::TokenPlain::Decode(token_bytes.value());
  ASSERT_TRUE(token_plain.ok());
  EXPECT_EQ(token_plain->session_key.size(), 32u);

  // Build the authenticator and authenticate at the PKG.
  wire::AuthenticatorPlain auth{"RC1", clock_.NowMicros()};
  Bytes auth_key =
      wire::DeriveChannelKey(token_plain->session_key,
                             crypto::CipherKind::kDes, "rc-pkg-authenticator");
  wire::PkgAuthRequest request;
  request.rc_identity = "RC1";
  request.ticket = token_plain->ticket;
  request.authenticator =
      crypto::CbcEncrypt(crypto::CipherKind::kDes, auth_key, auth.Encode(),
                         rng_)
          .value();
  auto response = pkg.Authenticate(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(pkg.ActiveSessions(), 1u);

  // A PKG with a different service key rejects the same token.
  pkg::PkgService other_pkg(math::GetParams(math::ParamPreset::kSmall),
                            Bytes(32, 0xEE), &clock_, &rng_);
  EXPECT_FALSE(other_pkg.Authenticate(request).ok());
}

TEST_F(MwsServiceTest, PkgRejectsReplayedAuthenticator) {
  auto keys = RegisterRc("RC1");
  service_.GrantAttribute("RC1", "A1").value();
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      mws_pkg_key_, &clock_, &rng_);
  auto grants = service_.mms().GrantsFor("RC1").value();
  auto token = service_.token_generator().IssueToken(
      "RC1", crypto::SerializeRsaPublicKey(keys.public_key), grants);
  auto token_bytes = crypto::OpenSealedBox(
      keys.private_key, crypto::CipherKind::kDes, token.value());
  auto token_plain = wire::TokenPlain::Decode(token_bytes.value()).value();

  wire::AuthenticatorPlain auth{"RC1", clock_.NowMicros()};
  Bytes auth_key = wire::DeriveChannelKey(
      token_plain.session_key, crypto::CipherKind::kDes,
      "rc-pkg-authenticator");
  wire::PkgAuthRequest request;
  request.rc_identity = "RC1";
  request.ticket = token_plain.ticket;
  request.authenticator =
      crypto::CbcEncrypt(crypto::CipherKind::kDes, auth_key, auth.Encode(),
                         rng_)
          .value();
  EXPECT_TRUE(pkg.Authenticate(request).ok());
  auto replay = pkg.Authenticate(request);
  EXPECT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsUnauthenticated());
}

TEST_F(MwsServiceTest, MmsResolvesGrantsPerFetch) {
  Bytes mac_key(32, 9);
  ASSERT_TRUE(service_.RegisterDevice("SD-1", mac_key).ok());
  RegisterRc("RC1");
  service_.GrantAttribute("RC1", "A1").value();

  wire::DepositRequest request;
  request.u = BytesFromString("u");
  request.ciphertext = BytesFromString("c");
  request.attribute = "A1";
  request.nonce = Bytes(16, 0);
  request.device_id = "SD-1";
  request.timestamp_micros = clock_.NowMicros();
  request.mac = crypto::HmacSha256(mac_key, request.AuthenticatedBytes());
  ASSERT_TRUE(service_.Deposit(request).ok());

  auto visible = service_.mms().FetchFor("RC1", 0).value();
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0].aid, service_.PolicyTable().value()[0].aid);

  ASSERT_TRUE(service_.RevokeAttribute("RC1", "A1").ok());
  EXPECT_TRUE(service_.mms().FetchFor("RC1", 0).value().empty());
}

}  // namespace
}  // namespace mws::mws
