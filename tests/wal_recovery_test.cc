// Crash-consistency property tests for the KvStore write-ahead log:
// whatever prefix of the log a crash leaves behind — truncated mid-record
// at ANY byte offset, or corrupted anywhere in the tail record — reopen
// must (a) replay every fully committed record before the damage,
// (b) drop the torn tail and report it in recovery_stats, and (c) leave
// a store that accepts new writes whose own reopen is clean.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/store/kvstore.h"
#include "src/store/snapshot.h"

namespace mws::store {
namespace {

using util::Bytes;
using util::BytesFromString;

std::string Key(size_t i) { return "key-" + std::to_string(i); }
Bytes Value(size_t i) {
  return BytesFromString("value-" + std::to_string(i) + "-payload");
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Key the path by pid as well: ctest runs each test in its own
    // process, and with deterministic allocation the `this` address (and
    // the default random_seed) coincide across concurrently running test
    // processes, which made parallel WAL tests clobber each other's file.
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_recovery_" + std::to_string(::getpid()) + "_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    store::KvStore::RemoveFiles(path_);
  }
  void TearDown() override { store::KvStore::RemoveFiles(path_); }

  /// Appends `count` records, flushing after each one and recording the
  /// log size at every committed-record boundary. boundaries[k] = log
  /// size with exactly k records committed.
  std::vector<size_t> WriteRecords(size_t count) {
    std::vector<size_t> boundaries = {0};
    auto store = KvStore::Open({.path = path_}).value();
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(store->Put(Key(i), Value(i)).ok());
      EXPECT_TRUE(store->Flush().ok());
      boundaries.push_back(
          static_cast<size_t>(std::filesystem::file_size(path_)));
    }
    return boundaries;
  }

  Bytes ReadLog() { return ReadFile(path_); }

  void WriteLog(const Bytes& content) { WriteFile(path_, content); }

  static Bytes ReadFile(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return Bytes((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  static void WriteFile(const std::string& file, const Bytes& content) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
  }

  std::string path_;
};

TEST_F(WalRecoveryTest, TruncationAtEveryByteOffsetKeepsCommittedPrefix) {
  constexpr size_t kRecords = 5;
  std::vector<size_t> boundaries = WriteRecords(kRecords);
  const Bytes full = ReadLog();
  ASSERT_EQ(full.size(), boundaries.back());

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteLog(Bytes(full.begin(), full.begin() + cut));

    // Number of records wholly inside the cut.
    size_t committed = 0;
    while (committed < kRecords && boundaries[committed + 1] <= cut) {
      ++committed;
    }

    auto store = KvStore::Open({.path = path_}).value();
    const auto& stats = store->recovery_stats();
    EXPECT_EQ(stats.records_replayed, committed) << "cut=" << cut;
    EXPECT_EQ(stats.bytes_replayed, boundaries[committed]) << "cut=" << cut;
    EXPECT_EQ(stats.bytes_truncated, cut - boundaries[committed])
        << "cut=" << cut;
    EXPECT_EQ(stats.torn_tail, cut != boundaries[committed]) << "cut=" << cut;

    for (size_t i = 0; i < kRecords; ++i) {
      if (i < committed) {
        auto value = store->Get(Key(i));
        ASSERT_TRUE(value.ok()) << "cut=" << cut << " record=" << i;
        EXPECT_EQ(value.value(), Value(i));
      } else {
        EXPECT_FALSE(store->Get(Key(i)).ok())
            << "cut=" << cut << " record=" << i;
      }
    }

    // The recovered store accepts new writes, and a clean reopen sees
    // the committed prefix plus the new write.
    EXPECT_TRUE(store->Put("after-crash", Value(99)).ok()) << "cut=" << cut;
    EXPECT_TRUE(store->Flush().ok());
    store.reset();
    auto reopened = KvStore::Open({.path = path_}).value();
    EXPECT_FALSE(reopened->recovery_stats().torn_tail) << "cut=" << cut;
    EXPECT_EQ(reopened->Size(), committed + 1) << "cut=" << cut;
    EXPECT_TRUE(reopened->Get("after-crash").ok()) << "cut=" << cut;
  }
}

TEST_F(WalRecoveryTest, CorruptionAnywhereInTailRecordDropsOnlyTheTail) {
  constexpr size_t kRecords = 4;
  std::vector<size_t> boundaries = WriteRecords(kRecords);
  const Bytes full = ReadLog();
  const size_t tail_start = boundaries[kRecords - 1];

  for (size_t offset = tail_start; offset < full.size(); ++offset) {
    Bytes mutated = full;
    mutated[offset] ^= 0xff;
    WriteLog(mutated);

    auto store = KvStore::Open({.path = path_}).value();
    const auto& stats = store->recovery_stats();
    EXPECT_TRUE(stats.torn_tail) << "offset=" << offset;
    EXPECT_EQ(stats.records_replayed, kRecords - 1) << "offset=" << offset;
    for (size_t i = 0; i + 1 < kRecords; ++i) {
      EXPECT_TRUE(store->Get(Key(i)).ok()) << "offset=" << offset;
    }
    EXPECT_FALSE(store->Get(Key(kRecords - 1)).ok()) << "offset=" << offset;
  }
}

TEST_F(WalRecoveryTest, DeletesAndOverwritesReplayInOrder) {
  {
    auto store = KvStore::Open({.path = path_}).value();
    ASSERT_TRUE(store->Put("a", BytesFromString("1")).ok());
    ASSERT_TRUE(store->Put("b", BytesFromString("2")).ok());
    ASSERT_TRUE(store->Put("a", BytesFromString("3")).ok());
    ASSERT_TRUE(store->Delete("b").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = KvStore::Open({.path = path_}).value();
  EXPECT_EQ(store->recovery_stats().records_replayed, 4u);
  EXPECT_FALSE(store->recovery_stats().torn_tail);
  EXPECT_EQ(store->recovery_stats().bytes_truncated, 0u);
  EXPECT_EQ(store->Get("a").value(), BytesFromString("3"));
  EXPECT_FALSE(store->Contains("b"));
}

// --- Compaction crash states ---
//
// The compaction protocol has exactly three externally visible states:
//   (a) crash while writing `.ckpt.tmp`  — scratch file, any content;
//   (b) crash after the rename, before the WAL truncation — new
//       checkpoint + the FULL old WAL;
//   (c) steady state — checkpoint + post-compaction tail.
// (a) must be invisible, (b) must replay idempotently, and in (c) tail
// damage must cost only the tail, never the checkpoint base.

TEST_F(WalRecoveryTest, CompactionScratchCrashAtEveryPrefixIsInvisible) {
  constexpr size_t kBase = 5, kTail = 3;
  {
    auto store = KvStore::Open({.path = path_}).value();
    for (size_t i = 0; i < kBase; ++i) {
      ASSERT_TRUE(store->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(store->Compact().ok());
    for (size_t i = kBase; i < kBase + kTail; ++i) {
      ASSERT_TRUE(store->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  const std::string tmp = KvStore::CheckpointPath(path_) + ".tmp";
  // A crash mid-checkpoint leaves `.ckpt.tmp` holding any prefix of the
  // image the compactor was writing — emulate with every prefix of the
  // committed checkpoint (same writer, same framing), plus raw garbage.
  const Bytes image = ReadFile(KvStore::CheckpointPath(path_));
  ASSERT_FALSE(image.empty());
  std::vector<Bytes> scratch_states;
  for (size_t cut = 0; cut <= image.size(); cut += 7) {
    scratch_states.emplace_back(image.begin(), image.begin() + cut);
  }
  scratch_states.push_back(BytesFromString("not a checkpoint at all"));
  for (const Bytes& scratch : scratch_states) {
    WriteFile(tmp, scratch);
    auto store = KvStore::Open({.path = path_}).value();
    const auto& stats = store->recovery_stats();
    EXPECT_EQ(stats.checkpoint_records, kBase);
    EXPECT_EQ(stats.records_replayed, kBase + kTail);
    EXPECT_FALSE(stats.torn_tail);
    for (size_t i = 0; i < kBase + kTail; ++i) {
      EXPECT_EQ(store->Get(Key(i)).value(), Value(i));
    }
    // Open disposed of the scratch file; the next compaction starts
    // clean.
    EXPECT_FALSE(std::filesystem::exists(tmp));
  }
}

TEST_F(WalRecoveryTest, CheckpointPlusFullOldWalReplaysIdempotently) {
  // Crash between compaction's rename and its WAL truncation: recovery
  // sees the new checkpoint AND every record the checkpoint already
  // folded in. Replaying them on top must be a no-op — including the
  // delete, which must not resurrect via the checkpoint or the replay.
  {
    auto store = KvStore::Open({.path = path_}).value();
    ASSERT_TRUE(store->Put("a", BytesFromString("1")).ok());
    ASSERT_TRUE(store->Put("b", BytesFromString("2")).ok());
    ASSERT_TRUE(store->Put("a", BytesFromString("3")).ok());
    ASSERT_TRUE(store->Delete("b").ok());
    ASSERT_TRUE(store->Flush().ok());
    const Bytes old_wal = ReadLog();
    ASSERT_TRUE(store->Compact().ok());  // ckpt: {a=3}; WAL truncated
    store.reset();
    WriteLog(old_wal);  // un-truncate: the crash kept the full old WAL
  }
  auto store = KvStore::Open({.path = path_}).value();
  const auto& stats = store->recovery_stats();
  EXPECT_EQ(stats.checkpoint_records, 1u);       // only `a` is live
  EXPECT_EQ(stats.records_replayed, 1u + 4u);    // ckpt + full old WAL
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(store->Size(), 1u);
  EXPECT_EQ(store->Get("a").value(), BytesFromString("3"));
  EXPECT_FALSE(store->Contains("b"));
  // The doubly-recovered store keeps working and reopens clean.
  ASSERT_TRUE(store->Put("c", BytesFromString("4")).ok());
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  auto reopened = KvStore::Open({.path = path_}).value();
  EXPECT_EQ(reopened->Size(), 2u);
  EXPECT_FALSE(reopened->Contains("b"));
}

TEST_F(WalRecoveryTest, TailTruncationAfterCompactionSparesTheCheckpoint) {
  constexpr size_t kBase = 4, kTail = 3;
  std::vector<size_t> boundaries = {0};
  {
    auto store = KvStore::Open({.path = path_}).value();
    for (size_t i = 0; i < kBase; ++i) {
      ASSERT_TRUE(store->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(store->Compact().ok());
    for (size_t i = kBase; i < kBase + kTail; ++i) {
      ASSERT_TRUE(store->Put(Key(kBase + (i - kBase)), Value(i)).ok());
      ASSERT_TRUE(store->Flush().ok());
      boundaries.push_back(
          static_cast<size_t>(std::filesystem::file_size(path_)));
    }
  }
  const Bytes tail = ReadLog();
  ASSERT_EQ(tail.size(), boundaries.back());
  for (size_t cut = 0; cut <= tail.size(); ++cut) {
    WriteLog(Bytes(tail.begin(), tail.begin() + cut));
    size_t committed = 0;
    while (committed < kTail && boundaries[committed + 1] <= cut) {
      ++committed;
    }
    auto store = KvStore::Open({.path = path_}).value();
    const auto& stats = store->recovery_stats();
    EXPECT_EQ(stats.checkpoint_records, kBase) << "cut=" << cut;
    EXPECT_EQ(stats.records_replayed, kBase + committed) << "cut=" << cut;
    // The checkpoint base is untouchable by tail damage.
    for (size_t i = 0; i < kBase; ++i) {
      EXPECT_EQ(store->Get(Key(i)).value(), Value(i)) << "cut=" << cut;
    }
    for (size_t i = 0; i < kTail; ++i) {
      EXPECT_EQ(store->Contains(Key(kBase + i)), i < committed)
          << "cut=" << cut;
    }
  }
}

// --- Checkpoint decoder fuzz ---
//
// A checkpoint is all-or-nothing: unlike the WAL (whose tail may be
// legitimately torn by a crash), ANY defect in a committed checkpoint is
// silent data loss waiting to happen, so the decoder must reject the
// whole file and Open must refuse to come up half-recovered.

TEST_F(WalRecoveryTest, CheckpointBitflipAnywhereFailsTheOpenLoudly) {
  constexpr size_t kRecords = 5;
  {
    auto store = KvStore::Open({.path = path_}).value();
    for (size_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(store->Put(Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(store->Delete(Key(0)).ok());
    ASSERT_TRUE(store->Compact().ok());
  }
  const std::string ckpt = KvStore::CheckpointPath(path_);
  const Bytes image = ReadFile(ckpt);
  ASSERT_FALSE(image.empty());

  // Deterministic single-bit flips: every byte, one bit chosen by a
  // seeded LCG so repeated runs exercise the same corpus.
  uint64_t lcg = 0x853c49e6748fea9bull;
  for (size_t offset = 0; offset < image.size(); ++offset) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    Bytes mutated = image;
    mutated[offset] ^= static_cast<uint8_t>(1u << (lcg >> 61));
    // The decoder itself rejects with kCorruption...
    auto decoded = DecodeCheckpoint(mutated);
    ASSERT_FALSE(decoded.ok()) << "offset=" << offset;
    EXPECT_EQ(decoded.status().code(), util::StatusCode::kCorruption)
        << "offset=" << offset;
    // ...and Open refuses to start on the damaged file.
    WriteFile(ckpt, mutated);
    EXPECT_FALSE(KvStore::Open({.path = path_}).ok()) << "offset=" << offset;
  }

  // Truncation at every byte boundary is equally fatal — the footer is
  // the commit marker, and a footer-less image never parses.
  for (size_t cut = 0; cut < image.size(); ++cut) {
    Bytes torn(image.begin(), image.begin() + cut);
    auto decoded = DecodeCheckpoint(torn);
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    WriteFile(ckpt, torn);
    EXPECT_FALSE(KvStore::Open({.path = path_}).ok()) << "cut=" << cut;
  }
  // Bytes after the footer are splice damage, not slack: rejected.
  Bytes padded = image;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeCheckpoint(padded).ok());

  // Restoring the pristine image restores service: the checks above
  // failed because of the corruption, not a broken fixture.
  WriteFile(ckpt, image);
  auto store = KvStore::Open({.path = path_}).value();
  EXPECT_EQ(store->Size(), kRecords - 1);
  EXPECT_FALSE(store->Contains(Key(0)));
  EXPECT_EQ(store->Get(Key(1)).value(), Value(1));
}

}  // namespace
}  // namespace mws::store
