// Crash-consistency property tests for the KvStore write-ahead log:
// whatever prefix of the log a crash leaves behind — truncated mid-record
// at ANY byte offset, or corrupted anywhere in the tail record — reopen
// must (a) replay every fully committed record before the damage,
// (b) drop the torn tail and report it in recovery_stats, and (c) leave
// a store that accepts new writes whose own reopen is clean.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/store/kvstore.h"

namespace mws::store {
namespace {

using util::Bytes;
using util::BytesFromString;

std::string Key(size_t i) { return "key-" + std::to_string(i); }
Bytes Value(size_t i) {
  return BytesFromString("value-" + std::to_string(i) + "-payload");
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Key the path by pid as well: ctest runs each test in its own
    // process, and with deterministic allocation the `this` address (and
    // the default random_seed) coincide across concurrently running test
    // processes, which made parallel WAL tests clobber each other's file.
    path_ = (std::filesystem::temp_directory_path() /
             ("wal_recovery_" + std::to_string(::getpid()) + "_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  /// Appends `count` records, flushing after each one and recording the
  /// log size at every committed-record boundary. boundaries[k] = log
  /// size with exactly k records committed.
  std::vector<size_t> WriteRecords(size_t count) {
    std::vector<size_t> boundaries = {0};
    auto store = KvStore::Open({.path = path_}).value();
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(store->Put(Key(i), Value(i)).ok());
      EXPECT_TRUE(store->Flush().ok());
      boundaries.push_back(
          static_cast<size_t>(std::filesystem::file_size(path_)));
    }
    return boundaries;
  }

  Bytes ReadLog() {
    std::ifstream in(path_, std::ios::binary);
    return Bytes((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  void WriteLog(const Bytes& content) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
  }

  std::string path_;
};

TEST_F(WalRecoveryTest, TruncationAtEveryByteOffsetKeepsCommittedPrefix) {
  constexpr size_t kRecords = 5;
  std::vector<size_t> boundaries = WriteRecords(kRecords);
  const Bytes full = ReadLog();
  ASSERT_EQ(full.size(), boundaries.back());

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteLog(Bytes(full.begin(), full.begin() + cut));

    // Number of records wholly inside the cut.
    size_t committed = 0;
    while (committed < kRecords && boundaries[committed + 1] <= cut) {
      ++committed;
    }

    auto store = KvStore::Open({.path = path_}).value();
    const auto& stats = store->recovery_stats();
    EXPECT_EQ(stats.records_replayed, committed) << "cut=" << cut;
    EXPECT_EQ(stats.bytes_replayed, boundaries[committed]) << "cut=" << cut;
    EXPECT_EQ(stats.bytes_truncated, cut - boundaries[committed])
        << "cut=" << cut;
    EXPECT_EQ(stats.torn_tail, cut != boundaries[committed]) << "cut=" << cut;

    for (size_t i = 0; i < kRecords; ++i) {
      if (i < committed) {
        auto value = store->Get(Key(i));
        ASSERT_TRUE(value.ok()) << "cut=" << cut << " record=" << i;
        EXPECT_EQ(value.value(), Value(i));
      } else {
        EXPECT_FALSE(store->Get(Key(i)).ok())
            << "cut=" << cut << " record=" << i;
      }
    }

    // The recovered store accepts new writes, and a clean reopen sees
    // the committed prefix plus the new write.
    EXPECT_TRUE(store->Put("after-crash", Value(99)).ok()) << "cut=" << cut;
    EXPECT_TRUE(store->Flush().ok());
    store.reset();
    auto reopened = KvStore::Open({.path = path_}).value();
    EXPECT_FALSE(reopened->recovery_stats().torn_tail) << "cut=" << cut;
    EXPECT_EQ(reopened->Size(), committed + 1) << "cut=" << cut;
    EXPECT_TRUE(reopened->Get("after-crash").ok()) << "cut=" << cut;
  }
}

TEST_F(WalRecoveryTest, CorruptionAnywhereInTailRecordDropsOnlyTheTail) {
  constexpr size_t kRecords = 4;
  std::vector<size_t> boundaries = WriteRecords(kRecords);
  const Bytes full = ReadLog();
  const size_t tail_start = boundaries[kRecords - 1];

  for (size_t offset = tail_start; offset < full.size(); ++offset) {
    Bytes mutated = full;
    mutated[offset] ^= 0xff;
    WriteLog(mutated);

    auto store = KvStore::Open({.path = path_}).value();
    const auto& stats = store->recovery_stats();
    EXPECT_TRUE(stats.torn_tail) << "offset=" << offset;
    EXPECT_EQ(stats.records_replayed, kRecords - 1) << "offset=" << offset;
    for (size_t i = 0; i + 1 < kRecords; ++i) {
      EXPECT_TRUE(store->Get(Key(i)).ok()) << "offset=" << offset;
    }
    EXPECT_FALSE(store->Get(Key(kRecords - 1)).ok()) << "offset=" << offset;
  }
}

TEST_F(WalRecoveryTest, DeletesAndOverwritesReplayInOrder) {
  {
    auto store = KvStore::Open({.path = path_}).value();
    ASSERT_TRUE(store->Put("a", BytesFromString("1")).ok());
    ASSERT_TRUE(store->Put("b", BytesFromString("2")).ok());
    ASSERT_TRUE(store->Put("a", BytesFromString("3")).ok());
    ASSERT_TRUE(store->Delete("b").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = KvStore::Open({.path = path_}).value();
  EXPECT_EQ(store->recovery_stats().records_replayed, 4u);
  EXPECT_FALSE(store->recovery_stats().torn_tail);
  EXPECT_EQ(store->recovery_stats().bytes_truncated, 0u);
  EXPECT_EQ(store->Get("a").value(), BytesFromString("3"));
  EXPECT_FALSE(store->Contains("b"));
}

}  // namespace
}  // namespace mws::store
