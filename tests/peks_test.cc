#include <gtest/gtest.h>

#include "src/ibe/peks.h"
#include "src/math/params.h"
#include "src/util/random.h"

namespace mws::ibe {
namespace {

using math::GetParams;
using math::ParamPreset;
using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;

class PeksTest : public ::testing::Test {
 protected:
  PeksTest()
      : peks_(GetParams(ParamPreset::kSmall)), rng_(17) {
    keys_ = peks_.GenerateKeyPair(rng_);
  }

  Peks peks_;
  DeterministicRandom rng_;
  Peks::KeyPair keys_;
};

TEST_F(PeksTest, MatchingKeywordTests) {
  Bytes keyword = BytesFromString("ELECTRIC");
  Peks::Tag tag = peks_.MakeTag(keys_.public_key, keyword, rng_);
  Peks::Trapdoor trapdoor = peks_.MakeTrapdoor(keys_.secret, keyword);
  EXPECT_TRUE(peks_.Test(tag, trapdoor));
}

TEST_F(PeksTest, NonMatchingKeywordFails) {
  Peks::Tag tag =
      peks_.MakeTag(keys_.public_key, BytesFromString("ELECTRIC"), rng_);
  Peks::Trapdoor trapdoor =
      peks_.MakeTrapdoor(keys_.secret, BytesFromString("WATER"));
  EXPECT_FALSE(peks_.Test(tag, trapdoor));
}

TEST_F(PeksTest, WrongRecipientKeyFails) {
  // Tag for one recipient tested with another recipient's trapdoor.
  Peks::KeyPair other = peks_.GenerateKeyPair(rng_);
  Bytes keyword = BytesFromString("ELECTRIC");
  Peks::Tag tag = peks_.MakeTag(keys_.public_key, keyword, rng_);
  EXPECT_FALSE(peks_.Test(tag, peks_.MakeTrapdoor(other.secret, keyword)));
}

TEST_F(PeksTest, TagsAreRandomizedTrapdoorsDeterministic) {
  Bytes keyword = BytesFromString("GAS");
  Peks::Tag a = peks_.MakeTag(keys_.public_key, keyword, rng_);
  Peks::Tag b = peks_.MakeTag(keys_.public_key, keyword, rng_);
  // Same keyword, different tags (the warehouse cannot cluster tags).
  EXPECT_NE(a.u, b.u);
  EXPECT_NE(a.check, b.check);
  // Both still test positive.
  Peks::Trapdoor trapdoor = peks_.MakeTrapdoor(keys_.secret, keyword);
  EXPECT_TRUE(peks_.Test(a, trapdoor));
  EXPECT_TRUE(peks_.Test(b, trapdoor));
  // Trapdoors are deterministic.
  EXPECT_EQ(trapdoor.t, peks_.MakeTrapdoor(keys_.secret, keyword).t);
}

TEST_F(PeksTest, ManyKeywordsSelectivity) {
  const char* keywords[] = {"ELECTRIC", "WATER", "GAS", "EVENT-E117",
                            "BILLING"};
  std::vector<Peks::Tag> tags;
  for (const char* w : keywords) {
    tags.push_back(peks_.MakeTag(keys_.public_key, BytesFromString(w), rng_));
  }
  Peks::Trapdoor water =
      peks_.MakeTrapdoor(keys_.secret, BytesFromString("WATER"));
  int matches = 0;
  for (const auto& tag : tags) {
    matches += peks_.Test(tag, water) ? 1 : 0;
  }
  EXPECT_EQ(matches, 1);
}

TEST_F(PeksTest, SerializationRoundTrip) {
  Peks::Tag tag =
      peks_.MakeTag(keys_.public_key, BytesFromString("ELECTRIC"), rng_);
  Bytes wire = peks_.SerializeTag(tag);
  auto parsed = peks_.ParseTag(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->u, tag.u);
  EXPECT_EQ(parsed->check, tag.check);
  EXPECT_FALSE(peks_.ParseTag(Bytes(7, 1)).ok());
  Bytes truncated(wire.begin(), wire.end() - 5);
  EXPECT_FALSE(peks_.ParseTag(truncated).ok());
}

TEST_F(PeksTest, DegenerateInputsRejected) {
  Peks::Tag tag{math::EcPoint::Infinity(), Bytes(32, 0)};
  Peks::Trapdoor trapdoor =
      peks_.MakeTrapdoor(keys_.secret, BytesFromString("W"));
  EXPECT_FALSE(peks_.Test(tag, trapdoor));
  Peks::Tag good =
      peks_.MakeTag(keys_.public_key, BytesFromString("W"), rng_);
  EXPECT_FALSE(peks_.Test(good, Peks::Trapdoor{math::EcPoint::Infinity()}));
}

TEST_F(PeksTest, TestManyMatchesTestPerTag) {
  // The batched mailbox sweep must agree with the scalar Test on every
  // entry: matches, non-matches, another recipient's tag, and an
  // infinity tag mixed into the batch.
  Bytes keyword = BytesFromString("ELECTRIC");
  Peks::Trapdoor trapdoor = peks_.MakeTrapdoor(keys_.secret, keyword);
  Peks::KeyPair other = peks_.GenerateKeyPair(rng_);
  std::vector<Peks::Tag> tags = {
      peks_.MakeTag(keys_.public_key, keyword, rng_),
      peks_.MakeTag(keys_.public_key, BytesFromString("WATER"), rng_),
      peks_.MakeTag(other.public_key, keyword, rng_),
      Peks::Tag{math::EcPoint::Infinity(), Bytes(32, 0)},
      peks_.MakeTag(keys_.public_key, keyword, rng_),
  };
  std::vector<bool> got = peks_.TestMany(tags, trapdoor);
  ASSERT_EQ(got.size(), tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(got[i], peks_.Test(tags[i], trapdoor)) << i;
  }
  EXPECT_TRUE(got[0]);
  EXPECT_FALSE(got[1]);
  EXPECT_FALSE(got[2]);
  EXPECT_FALSE(got[3]);
  EXPECT_TRUE(got[4]);
  // Degenerate trapdoor and empty batch.
  EXPECT_TRUE(peks_.TestMany({}, trapdoor).empty());
  std::vector<bool> none =
      peks_.TestMany(tags, Peks::Trapdoor{math::EcPoint::Infinity()});
  for (bool b : none) EXPECT_FALSE(b);
}

}  // namespace
}  // namespace mws::ibe
