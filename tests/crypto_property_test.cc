// Property-style sweeps over the crypto substrate: classical DES
// properties (weak keys, complementation), avalanche behaviour of the
// hash functions and ciphers, and randomized cross-checks that CBC/CTR
// compose correctly with every cipher.

#include <gtest/gtest.h>

#include <bitset>

#include "src/crypto/block_cipher.h"
#include "src/crypto/hash.h"
#include "src/crypto/hmac.h"
#include "src/crypto/modes.h"
#include "src/util/hex.h"
#include "src/util/random.h"

namespace mws::crypto {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;
using util::HexDecode;

Bytes H(const char* hex) { return HexDecode(hex).value(); }

int HammingDistance(const Bytes& a, const Bytes& b) {
  int bits = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    bits += std::bitset<8>(a[i] ^ b[i]).count();
  }
  return bits;
}

// --- Classical DES algebraic properties ---

TEST(DesPropertyTest, WeakKeysAreInvolutions) {
  // For the four DES weak keys, encryption is its own inverse.
  const char* weak_keys[] = {
      "0101010101010101",
      "fefefefefefefefe",
      "e0e0e0e0f1f1f1f1",
      "1f1f1f1f0e0e0e0e",
  };
  DeterministicRandom rng(1);
  for (const char* key_hex : weak_keys) {
    auto cipher = NewBlockCipher(CipherKind::kDes, H(key_hex)).value();
    for (int i = 0; i < 10; ++i) {
      Bytes block = rng.Generate(8);
      Bytes once(8), twice(8);
      cipher->EncryptBlock(block.data(), once.data());
      cipher->EncryptBlock(once.data(), twice.data());
      EXPECT_EQ(twice, block) << key_hex;
    }
  }
}

TEST(DesPropertyTest, ComplementationProperty) {
  // DES(~K, ~P) == ~DES(K, P) — a structural property of the Feistel
  // network that any correct implementation must exhibit.
  DeterministicRandom rng(2);
  for (int i = 0; i < 20; ++i) {
    Bytes key = rng.Generate(8);
    Bytes plain = rng.Generate(8);
    Bytes key_c(8), plain_c(8);
    for (int j = 0; j < 8; ++j) {
      key_c[j] = static_cast<uint8_t>(~key[j]);
      plain_c[j] = static_cast<uint8_t>(~plain[j]);
    }
    Bytes ct(8), ct_c(8);
    NewBlockCipher(CipherKind::kDes, key).value()->EncryptBlock(plain.data(),
                                                                ct.data());
    NewBlockCipher(CipherKind::kDes, key_c)
        .value()
        ->EncryptBlock(plain_c.data(), ct_c.data());
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(static_cast<uint8_t>(~ct[j]), ct_c[j]);
    }
  }
}

// --- Avalanche sweeps ---

class CipherAvalancheTest : public ::testing::TestWithParam<CipherKind> {};

TEST_P(CipherAvalancheTest, SingleBitFlipChangesHalfTheOutput) {
  DeterministicRandom rng(3);
  const size_t block = BlockLength(GetParam());
  int total_distance = 0;
  const int kTrials = 50;
  for (int i = 0; i < kTrials; ++i) {
    Bytes key = rng.Generate(KeyLength(GetParam()));
    auto cipher = NewBlockCipher(GetParam(), key).value();
    Bytes plain = rng.Generate(block);
    Bytes flipped = plain;
    flipped[rng.UniformU64(block)] ^= static_cast<uint8_t>(
        1u << rng.UniformU64(8));
    Bytes a(block), b(block);
    cipher->EncryptBlock(plain.data(), a.data());
    cipher->EncryptBlock(flipped.data(), b.data());
    total_distance += HammingDistance(a, b);
  }
  double mean = static_cast<double>(total_distance) / kTrials;
  double expected = 8.0 * block / 2;  // half the bits
  EXPECT_GT(mean, expected * 0.8);
  EXPECT_LT(mean, expected * 1.2);
}

INSTANTIATE_TEST_SUITE_P(AllCiphers, CipherAvalancheTest,
                         ::testing::Values(CipherKind::kDes,
                                           CipherKind::kTripleDes,
                                           CipherKind::kAes128),
                         [](const ::testing::TestParamInfo<CipherKind>& info) {
                           switch (info.param) {
                             case CipherKind::kDes:
                               return "Des";
                             case CipherKind::kTripleDes:
                               return "TripleDes";
                             case CipherKind::kAes128:
                               return "Aes128";
                           }
                           return "Unknown";
                         });

class HashAvalancheTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashAvalancheTest, SingleBitFlipChangesHalfTheDigest) {
  DeterministicRandom rng(4);
  int total_distance = 0;
  const int kTrials = 50;
  const size_t digest_bits = 8 * DigestLength(GetParam());
  for (int i = 0; i < kTrials; ++i) {
    Bytes message = rng.Generate(40);
    Bytes flipped = message;
    flipped[rng.UniformU64(message.size())] ^= static_cast<uint8_t>(
        1u << rng.UniformU64(8));
    total_distance +=
        HammingDistance(Hash(GetParam(), message), Hash(GetParam(), flipped));
  }
  double mean = static_cast<double>(total_distance) / kTrials;
  EXPECT_GT(mean, digest_bits / 2.0 * 0.8);
  EXPECT_LT(mean, digest_bits / 2.0 * 1.2);
}

INSTANTIATE_TEST_SUITE_P(AllHashes, HashAvalancheTest,
                         ::testing::Values(HashKind::kSha1, HashKind::kSha256,
                                           HashKind::kMd5),
                         [](const ::testing::TestParamInfo<HashKind>& info) {
                           switch (info.param) {
                             case HashKind::kSha1:
                               return "Sha1";
                             case HashKind::kSha256:
                               return "Sha256";
                             case HashKind::kMd5:
                               return "Md5";
                           }
                           return "Unknown";
                         });

// --- Mode composition properties ---

TEST(ModePropertyTest, CbcIdenticalBlocksProduceDistinctCiphertext) {
  // The ECB weakness CBC exists to fix: equal plaintext blocks must not
  // yield equal ciphertext blocks.
  DeterministicRandom rng(5);
  Bytes key = rng.Generate(8);
  Bytes plain(64, 0x41);  // 8 identical DES blocks
  Bytes ct = CbcEncrypt(CipherKind::kDes, key, plain, rng).value();
  // Compare consecutive ciphertext blocks (skip the IV).
  for (size_t b = 1; b + 1 < ct.size() / 8; ++b) {
    Bytes blk1(ct.begin() + 8 * b, ct.begin() + 8 * (b + 1));
    Bytes blk2(ct.begin() + 8 * (b + 1), ct.begin() + 8 * (b + 2));
    EXPECT_NE(blk1, blk2);
  }
}

TEST(ModePropertyTest, CtrIsXorOfKeystream) {
  // ct(m1) xor ct(m2) == m1 xor m2 under the same nonce — verified by
  // decrypting a ciphertext spliced from another encryption's nonce.
  DeterministicRandom rng(6);
  Bytes key = rng.Generate(16);
  Bytes m1 = rng.Generate(48);
  Bytes ct1 = CtrEncrypt(CipherKind::kAes128, key, m1, rng).value();
  // Flip bits of the body: decryption flips exactly those plaintext bits.
  Bytes tampered = ct1;
  tampered[16] ^= 0xff;  // first body byte (after 16-byte nonce)
  Bytes out = CtrDecrypt(CipherKind::kAes128, key, tampered).value();
  EXPECT_EQ(static_cast<uint8_t>(out[0] ^ m1[0]), 0xff);
  for (size_t i = 1; i < m1.size(); ++i) EXPECT_EQ(out[i], m1[i]);
}

TEST(ModePropertyTest, HmacDistributesOverNoStructure) {
  // MACs of related messages are unrelated (sanity avalanche on HMAC).
  Bytes key = BytesFromString("k");
  Bytes a = HmacSha256(key, BytesFromString("message-A"));
  Bytes b = HmacSha256(key, BytesFromString("message-B"));
  int distance = HammingDistance(a, b);
  EXPECT_GT(distance, 256 / 2 * 0.6);
}

}  // namespace
}  // namespace mws::crypto
