#include <gtest/gtest.h>

#include "src/sim/scenario.h"
#include "src/sim/workload.h"

namespace mws::sim {
namespace {

TEST(WorkloadTest, PayloadRoundTrip) {
  WorkloadGenerator gen({.seed = 1});
  MeterReading r = gen.Next("ELECTRIC-METER-0", MeterClass::kElectric,
                            1'000'000'000);
  auto parsed = MeterReading::FromPayload(r.ToPayload());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->device_id, r.device_id);
  EXPECT_EQ(parsed->klass, r.klass);
  EXPECT_EQ(parsed->timestamp_micros, r.timestamp_micros);
  EXPECT_NEAR(parsed->consumption, r.consumption, 0.001);
  EXPECT_EQ(parsed->event, r.event);
}

TEST(WorkloadTest, EventPayloadRoundTrip) {
  MeterReading r;
  r.device_id = "GAS-METER-3";
  r.klass = MeterClass::kGas;
  r.timestamp_micros = 42;
  r.consumption = 1.5;
  r.peak_rate = 2.0;
  r.event = "E117";
  auto parsed = MeterReading::FromPayload(r.ToPayload());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->event, "E117");
}

TEST(WorkloadTest, RejectsGarbagePayload) {
  EXPECT_FALSE(
      MeterReading::FromPayload(util::BytesFromString("not a reading")).ok());
  EXPECT_FALSE(MeterReading::FromPayload(
                   util::BytesFromString("meter=X class=PLASMA"))
                   .ok());
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator a({.seed = 5});
  WorkloadGenerator b({.seed = 5});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next("D", MeterClass::kWater, i * 1000).ToPayload(),
              b.Next("D", MeterClass::kWater, i * 1000).ToPayload());
  }
}

TEST(WorkloadTest, BatchShape) {
  WorkloadGenerator gen({.seed = 2});
  auto batch = gen.Batch(/*devices_per_class=*/2, /*per_device=*/3,
                         /*start_micros=*/0, /*interval_micros=*/1000);
  EXPECT_EQ(batch.size(), 2u * 3u * 3u);
  // Timestamps advance per device.
  EXPECT_EQ(batch[0].timestamp_micros, 0);
  EXPECT_EQ(batch[1].timestamp_micros, 1000);
}

TEST(WorkloadTest, PaddingSweepsMessageSize) {
  WorkloadGenerator gen({.seed = 3, .pad_to_bytes = 512});
  MeterReading r = gen.Next("D", MeterClass::kElectric, 0);
  EXPECT_EQ(gen.Pad(r.ToPayload()).size(), 512u);
  // Padded payload still parses.
  EXPECT_TRUE(MeterReading::FromPayload(gen.Pad(r.ToPayload())).ok());
}

TEST(WorkloadTest, ConsumptionFollowsDailyCurve) {
  WorkloadGenerator gen({.seed = 4, .event_percent = 0});
  // Noon consumption should exceed 3am consumption on average.
  double noon = 0, night = 0;
  for (int day = 0; day < 20; ++day) {
    int64_t base = day * 24ll * 3'600'000'000ll;
    noon += gen.Next("D", MeterClass::kElectric, base + 12ll * 3'600'000'000ll)
                .consumption;
    night += gen.Next("D", MeterClass::kElectric, base + 3ll * 3'600'000'000ll)
                 .consumption;
  }
  EXPECT_GT(noon, night);
}

TEST(WorkloadTest, DeviceIdNaming) {
  EXPECT_EQ(DeviceId(MeterClass::kElectric, 0), "ELECTRIC-METER-0");
  EXPECT_EQ(DeviceId(MeterClass::kWater, 12), "WATER-METER-12");
}

TEST(ScenarioTest, BuildsFig1World) {
  auto scenario = UtilityScenario::Create({.devices_per_class = 2});
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto& s = *scenario.value();
  EXPECT_EQ(s.devices().size(), 6u);
  EXPECT_EQ(s.company_names().size(), 3u);
  // The policy table has 3 + 2 + 1 = 6 grants.
  EXPECT_EQ(s.mws().PolicyTable().value().size(), 6u);
}

TEST(ScenarioTest, AttributeForClass) {
  EXPECT_EQ(UtilityScenario::AttributeFor(MeterClass::kElectric),
            UtilityScenario::kElectricAttr);
  EXPECT_EQ(UtilityScenario::AttributeFor(MeterClass::kWater),
            UtilityScenario::kWaterAttr);
  EXPECT_EQ(UtilityScenario::AttributeFor(MeterClass::kGas),
            UtilityScenario::kGasAttr);
}

TEST(ScenarioTest, DepositCountsMatch) {
  auto scenario = UtilityScenario::Create({.devices_per_class = 2});
  ASSERT_TRUE(scenario.ok());
  auto& s = *scenario.value();
  auto deposited = s.DepositReadings(3);
  ASSERT_TRUE(deposited.ok());
  EXPECT_EQ(deposited.value(), 18u);  // 6 devices x 3 readings
  EXPECT_EQ(s.mws().message_db().Count(), 18u);
}

}  // namespace
}  // namespace mws::sim
