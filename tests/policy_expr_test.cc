#include <gtest/gtest.h>

#include "src/mws/policy_expr.h"
#include "src/sim/scenario.h"
#include "src/wire/auth.h"

namespace mws::mws {
namespace {

bool Match(const std::string& expr, const std::string& attribute) {
  auto parsed = PolicyExpression::Parse(expr);
  EXPECT_TRUE(parsed.ok()) << expr << ": " << parsed.status();
  return parsed.ok() && parsed->Matches(attribute);
}

TEST(GlobMatchTest, Basics) {
  EXPECT_TRUE(GlobMatch("ABC", "ABC"));
  EXPECT_FALSE(GlobMatch("ABC", "ABCD"));
  EXPECT_FALSE(GlobMatch("ABC", "AB"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "ANYTHING"));
  EXPECT_TRUE(GlobMatch("A*", "A"));
  EXPECT_TRUE(GlobMatch("A*", "ABCDE"));
  EXPECT_FALSE(GlobMatch("A*", "BA"));
  EXPECT_TRUE(GlobMatch("*A", "BBBA"));
  EXPECT_TRUE(GlobMatch("A*B*C", "AXXBYYC"));
  EXPECT_FALSE(GlobMatch("A*B*C", "AXXCYYB"));
  EXPECT_TRUE(GlobMatch("ELECTRIC-*-SV-CA", "ELECTRIC-BAYTOWER-SV-CA"));
  EXPECT_FALSE(GlobMatch("ELECTRIC-*-SV-CA", "WATER-BAYTOWER-SV-CA"));
  // Consecutive stars collapse.
  EXPECT_TRUE(GlobMatch("A**B", "AXB"));
  EXPECT_TRUE(GlobMatch("**", "X"));
}

TEST(PolicyExprTest, SinglePattern) {
  EXPECT_TRUE(Match("ELECTRIC-*", "ELECTRIC-BAYTOWER-SV-CA"));
  EXPECT_FALSE(Match("ELECTRIC-*", "GAS-BAYTOWER-SV-CA"));
}

TEST(PolicyExprTest, OrAndNot) {
  EXPECT_TRUE(Match("ELECTRIC-* OR GAS-*", "GAS-X"));
  EXPECT_TRUE(Match("ELECTRIC-* OR GAS-*", "ELECTRIC-X"));
  EXPECT_FALSE(Match("ELECTRIC-* OR GAS-*", "WATER-X"));
  EXPECT_TRUE(Match("*-SV-CA AND ELECTRIC-*", "ELECTRIC-APT-SV-CA"));
  EXPECT_FALSE(Match("*-SV-CA AND ELECTRIC-*", "ELECTRIC-APT-LA-CA"));
  EXPECT_TRUE(Match("NOT WATER-*", "GAS-X"));
  EXPECT_FALSE(Match("NOT WATER-*", "WATER-X"));
}

TEST(PolicyExprTest, PrecedenceAndParens) {
  // AND binds tighter than OR.
  EXPECT_TRUE(Match("A* AND *1 OR B*", "B9"));
  EXPECT_TRUE(Match("A* AND *1 OR B*", "A1"));
  EXPECT_FALSE(Match("A* AND *1 OR B*", "A2"));
  // Parentheses override.
  EXPECT_FALSE(Match("A* AND (*1 OR B*)", "A2"));
  EXPECT_TRUE(Match("A* AND (*1 OR AB*)", "AB7"));
  // NOT binds tightest.
  EXPECT_TRUE(Match("NOT A* AND B*", "B1"));
  EXPECT_FALSE(Match("NOT A* AND B*", "A1"));
  EXPECT_TRUE(Match("NOT (A* AND B*)", "A1"));
}

TEST(PolicyExprTest, ChainedOperators) {
  EXPECT_TRUE(Match("A* OR B* OR C*", "C1"));
  EXPECT_TRUE(Match("*1 AND *-1 AND A*", "A-1"));
  EXPECT_FALSE(Match("*1 AND *2", "X1"));
  EXPECT_TRUE(Match("NOT NOT A*", "A1"));
}

TEST(PolicyExprTest, ParseErrors) {
  EXPECT_FALSE(PolicyExpression::Parse("").ok());
  EXPECT_FALSE(PolicyExpression::Parse("AND").ok());
  EXPECT_FALSE(PolicyExpression::Parse("A* OR").ok());
  EXPECT_FALSE(PolicyExpression::Parse("(A*").ok());
  EXPECT_FALSE(PolicyExpression::Parse("A*)").ok());
  EXPECT_FALSE(PolicyExpression::Parse("A* B*").ok());
  EXPECT_FALSE(PolicyExpression::Parse("lower").ok());
  EXPECT_FALSE(PolicyExpression::Parse("A* && B*").ok());
  EXPECT_FALSE(PolicyExpression::Parse("NOT").ok());
}

TEST(PolicyExprTest, ToStringRoundTrips) {
  const char* cases[] = {
      "ELECTRIC-*",
      "A* OR B*",
      "A* AND (B* OR C*)",
      "NOT WATER-* AND *-SV-CA",
  };
  for (const char* text : cases) {
    auto expr = PolicyExpression::Parse(text);
    ASSERT_TRUE(expr.ok()) << text;
    auto reparsed = PolicyExpression::Parse(expr->ToString());
    ASSERT_TRUE(reparsed.ok()) << expr->ToString();
    // Semantics preserved on probe inputs.
    for (const char* attr : {"ELECTRIC-1", "WATER-X-SV-CA", "A9", "B7",
                             "C-SV-CA", "GAS-APT-SV-CA"}) {
      EXPECT_EQ(expr->Matches(attr), reparsed->Matches(attr))
          << text << " vs " << expr->ToString() << " on " << attr;
    }
  }
}

// --- End-to-end integration through the scenario ---

class PolicyExprE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = sim::UtilityScenario::Create({});
    ASSERT_TRUE(scenario.ok());
    s_ = std::move(scenario).value();
    // A fourth company with no concrete grants, only an expression.
    auto keys = crypto::RsaGenerateKeyPair(768, s_->rng()).value();
    ASSERT_TRUE(s_->mws()
                    .RegisterReceivingClient(
                        "GRID-ANALYTICS", wire::HashPassword("pw-grid"),
                        crypto::SerializeRsaPublicKey(keys.public_key))
                    .ok());
    rc_ = std::make_unique<client::ReceivingClient>(
        "GRID-ANALYTICS", "pw-grid", std::move(keys),
        s_->pkg().PublicParams(), s_->options().cipher, s_->options().dem,
        &s_->transport(), &s_->clock(), &s_->rng());
  }

  std::unique_ptr<sim::UtilityScenario> s_;
  std::unique_ptr<client::ReceivingClient> rc_;
};

TEST_F(PolicyExprE2eTest, ExpressionGrantsMaterializeAndDecrypt) {
  uint64_t seq = s_->mws()
                     .GrantPolicyExpression("GRID-ANALYTICS",
                                            "ELECTRIC-* OR GAS-*")
                     .value();
  ASSERT_GT(seq, 0u);
  s_->DepositReadings(1).value();

  auto messages = rc_->FetchAndDecrypt();
  ASSERT_TRUE(messages.ok()) << messages.status();
  EXPECT_EQ(messages->size(), 2u);  // electric + gas, not water
  for (const auto& m : messages.value()) {
    auto reading = sim::MeterReading::FromPayload(m.plaintext).value();
    EXPECT_NE(reading.klass, sim::MeterClass::kWater);
  }
  // Materialized rows are visible in the policy table with provenance.
  int materialized = 0;
  const auto table = s_->mws().PolicyTable().value();
  for (const auto& row : table) {
    if (row.identity == "GRID-ANALYTICS") {
      EXPECT_EQ(row.origin, seq);
      ++materialized;
    }
  }
  EXPECT_EQ(materialized, 2);
}

TEST_F(PolicyExprE2eTest, NewAttributesCoveredAsTheyAppear) {
  s_->mws().GrantPolicyExpression("GRID-ANALYTICS", "*-BAYTOWER-SV-CA")
      .value();
  s_->DepositReadings(1).value();
  EXPECT_EQ(rc_->FetchAndDecrypt()->size(), 3u);

  // A brand-new device class appears; the expression covers it with no
  // operator action ("dynamic recipients", requirement v).
  auto& device = s_->devices()[0];
  device
      .DepositMessage("SOLAR-BAYTOWER-SV-CA",
                      util::BytesFromString("meter=S-1 class=ELECTRIC "
                                            "ts=1 consumption=5.0 peak=5.5 "
                                            "event=none"))
      .value();
  EXPECT_EQ(rc_->FetchAndDecrypt()->size(), 4u);
}

TEST_F(PolicyExprE2eTest, RevokingExpressionRevokesMaterializedGrants) {
  uint64_t seq =
      s_->mws().GrantPolicyExpression("GRID-ANALYTICS", "ELECTRIC-*").value();
  s_->DepositReadings(1).value();
  ASSERT_EQ(rc_->FetchAndDecrypt()->size(), 1u);

  ASSERT_TRUE(s_->mws().RevokePolicyExpression("GRID-ANALYTICS", seq).ok());
  s_->DepositReadings(1).value();
  EXPECT_TRUE(rc_->FetchAndDecrypt()->empty());
  // Manual grants are untouched by expression revocation.
  const auto table = s_->mws().PolicyTable().value();
  for (const auto& row : table) {
    EXPECT_NE(row.identity, "GRID-ANALYTICS");
  }
}

TEST_F(PolicyExprE2eTest, InvalidExpressionRejectedAtGrantTime) {
  EXPECT_FALSE(
      s_->mws().GrantPolicyExpression("GRID-ANALYTICS", "A* OR").ok());
  EXPECT_FALSE(
      s_->mws().GrantPolicyExpression("NOBODY", "ELECTRIC-*").ok());
  EXPECT_TRUE(
      s_->mws().RevokePolicyExpression("GRID-ANALYTICS", 77).IsNotFound());
}

}  // namespace
}  // namespace mws::mws
