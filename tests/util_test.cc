#include <gtest/gtest.h>

#include "src/util/base64.h"
#include "src/util/bytes.h"
#include "src/util/clock.h"
#include "src/util/hex.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/string_util.h"

namespace mws::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing record");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing record");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int v) {
  MWS_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

Result<int> DoubledPositive(int v) {
  MWS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubledPositive(4).value(), 8);
  EXPECT_FALSE(DoubledPositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(BytesTest, StringRoundTrip) {
  Bytes b = BytesFromString("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(StringFromBytes(b), "hello");
}

TEST(BytesTest, Concat) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = {4, 5, 6};
  EXPECT_EQ(Concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(Concat(a, b, c), (Bytes{1, 2, 3, 4, 5, 6}));
}

TEST(BytesTest, Xor) {
  Bytes a = {0xff, 0x0f};
  Bytes b = {0xf0, 0x0f};
  EXPECT_EQ(Xor(a, b), (Bytes{0x0f, 0x00}));
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, SecureWipe) {
  Bytes b = {9, 9, 9};
  SecureWipe(b);
  EXPECT_EQ(b, (Bytes{0, 0, 0}));
}

TEST(HexTest, EncodeDecode) {
  Bytes data = {0x00, 0x1f, 0xab, 0xff};
  EXPECT_EQ(HexEncode(data), "001fabff");
  auto decoded = HexDecode("001fabff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(HexTest, DecodeUppercase) {
  auto decoded = HexDecode("ABCDEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(HexTest, RejectsOddLength) { EXPECT_FALSE(HexDecode("abc").ok()); }

TEST(HexTest, RejectsNonHex) { EXPECT_FALSE(HexDecode("zz").ok()); }

TEST(HexTest, EmptyRoundTrip) {
  EXPECT_EQ(HexEncode({}), "");
  EXPECT_EQ(HexDecode("").value(), Bytes{});
}

TEST(Base64Test, Rfc4648Vectors) {
  // RFC 4648 section 10 test vectors.
  EXPECT_EQ(Base64Encode(BytesFromString("")), "");
  EXPECT_EQ(Base64Encode(BytesFromString("f")), "Zg==");
  EXPECT_EQ(Base64Encode(BytesFromString("fo")), "Zm8=");
  EXPECT_EQ(Base64Encode(BytesFromString("foo")), "Zm9v");
  EXPECT_EQ(Base64Encode(BytesFromString("foob")), "Zm9vYg==");
  EXPECT_EQ(Base64Encode(BytesFromString("fooba")), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode(BytesFromString("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodeRoundTrip) {
  for (const char* s : {"", "f", "fo", "foo", "foob", "fooba", "foobar"}) {
    Bytes data = BytesFromString(s);
    auto decoded = Base64Decode(Base64Encode(data));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), data);
  }
}

TEST(Base64Test, RejectsBadLength) { EXPECT_FALSE(Base64Decode("Zm9").ok()); }

TEST(Base64Test, RejectsBadChar) { EXPECT_FALSE(Base64Decode("Zm9!").ok()); }

TEST(Base64Test, RejectsMisplacedPadding) {
  EXPECT_FALSE(Base64Decode("=m9v").ok());
  EXPECT_FALSE(Base64Decode("Zm=v").ok());
  EXPECT_FALSE(Base64Decode("Zg==Zg==").ok());
}

TEST(ClockTest, SystemClockAdvances) {
  SystemClock clock;
  int64_t a = clock.NowMicros();
  EXPECT_GT(a, 0);
}

TEST(ClockTest, SimulatedClock) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SetMicros(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(RandomTest, DeterministicReproducible) {
  DeterministicRandom a(42);
  DeterministicRandom b(42);
  EXPECT_EQ(a.Generate(32), b.Generate(32));
  DeterministicRandom c(43);
  EXPECT_NE(a.Generate(32), c.Generate(32));
}

TEST(RandomTest, UniformBounds) {
  DeterministicRandom rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformU64(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  DeterministicRandom rng(2);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[rng.UniformU64(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RandomTest, OsRandomNotConstant) {
  Bytes a = OsRandom::Instance().Generate(16);
  Bytes b = OsRandom::Instance().Generate(16);
  EXPECT_NE(a, b);  // Probability 2^-128 of flake.
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a||b", '|'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringUtilTest, UpperAndPrefix) {
  EXPECT_EQ(ToUpperAscii("electric-sv"), "ELECTRIC-SV");
  EXPECT_TRUE(StartsWith("ELECTRIC-APT", "ELECTRIC"));
  EXPECT_FALSE(StartsWith("GAS", "ELECTRIC"));
}

}  // namespace
}  // namespace mws::util
