// Server-robustness tests over real sockets: a stalled server returns
// DeadlineExceeded within the client's IO timeout instead of hanging,
// a full dispatch queue sheds with ResourceExhausted, dropped
// persistent connections reconnect transparently, oversized frames are
// rejected, and every StatusCode survives the wire-error round trip.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/wire/messages.h"
#include "src/wire/tcp.h"

namespace mws::wire {
namespace {

using util::Bytes;
using util::BytesFromString;

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A TCP endpoint that listens but never accepts: connect() succeeds
/// (kernel backlog), the request drains into socket buffers, and no
/// response byte ever arrives — the shape of a wedged server process.
class StalledListener {
 public:
  StalledListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(fd_, 8);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  ~StalledListener() {
    if (fd_ >= 0) ::close(fd_);
  }

  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

TEST(ResilienceTcpTest, StalledServerReturnsDeadlineExceededWithinTimeout) {
  StalledListener stalled;
  TcpClientTransport client("127.0.0.1", stalled.port());
  client.set_io_timeout_millis(200);

  const int64_t start = NowMillis();
  auto response = client.Call("mws.deposit", BytesFromString("req"));
  const int64_t elapsed = NowMillis() - start;

  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  // Bounded by the IO timeout (plus slack), not hung forever.
  EXPECT_LT(elapsed, 2'000);
}

TEST(ResilienceTcpTest, SlowHandlerBoundedByClientTimeout) {
  InProcessTransport backend;
  backend.Register("slow", [](const Bytes& b) -> util::Result<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    return b;
  });
  auto server = TcpServer::Start(&backend, 0).value();
  TcpClientTransport client("127.0.0.1", server->port());
  client.set_io_timeout_millis(100);

  auto response = client.Call("slow", BytesFromString("req"));
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  EXPECT_TRUE(response.status().IsRetryable() ==
              util::IsRetryableCode(response.status().code()));

  // The transport recovers on the next call once the server is fast.
  backend.Register("fast", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  client.set_io_timeout_millis(5'000);
  EXPECT_TRUE(client.Call("fast", BytesFromString("again")).ok());
}

TEST(ResilienceTcpTest, FullDispatchQueueShedsWithResourceExhausted) {
  std::mutex mutex;
  std::condition_variable cv;
  int entered = 0;
  bool release = false;

  InProcessTransport backend;
  backend.Register("block", [&](const Bytes& b) -> util::Result<Bytes> {
    std::unique_lock<std::mutex> lock(mutex);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return b;
  });

  TcpServer::Options options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  auto server = TcpServer::Start(&backend, 0, options).value();

  // First request occupies the single worker inside the handler.
  std::thread first([&] {
    TcpClientTransport client("127.0.0.1", server->port());
    EXPECT_TRUE(client.Call("block", BytesFromString("a")).ok());
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered == 1; });
  }

  // Two more arrive while the worker is pinned: one fits the queue, the
  // other must be shed with ResourceExhausted (and no backend call).
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> rest;
  for (int i = 0; i < 2; ++i) {
    rest.emplace_back([&] {
      TcpClientTransport client("127.0.0.1", server->port());
      auto response = client.Call("block", BytesFromString("b"));
      if (response.ok()) {
        ++ok;
      } else if (response.status().IsResourceExhausted()) {
        ++shed;
      } else {
        ++other;
      }
    });
  }
  // Let both requests reach the IO thread before releasing the worker.
  while (server->shed_requests() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  first.join();
  for (auto& t : rest) t.join();

  // At least the overflowing request was shed (late EOF events from
  // disconnecting clients may also hit a momentarily full queue).
  EXPECT_GE(server->shed_requests(), 1u);
  EXPECT_EQ(ok.load(), 1);
  EXPECT_EQ(shed.load(), 1);
  EXPECT_EQ(other.load(), 0);
  // The shed code is retryable: a backing-off client may try again.
  EXPECT_TRUE(util::IsRetryableCode(util::StatusCode::kResourceExhausted));
}

TEST(ResilienceTcpTest, ReconnectsAfterServerRestart) {
  InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  auto server = TcpServer::Start(&backend, 0).value();
  const uint16_t port = server->port();

  TcpClientTransport client("127.0.0.1", port);
  ASSERT_TRUE(client.Call("echo", BytesFromString("one")).ok());
  EXPECT_EQ(client.reconnects(), 0u);

  // Restart the server on the same port: the client's persistent
  // connection is dead, so the next call must reconnect and resend.
  server->Shutdown();
  server.reset();
  server = TcpServer::Start(&backend, port).value();

  auto response = client.Call("echo", BytesFromString("two"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response.value(), BytesFromString("two"));
  EXPECT_EQ(client.reconnects(), 1u);
}

TEST(ResilienceTcpTest, OversizedFrameIsRejected) {
  InProcessTransport backend;
  backend.Register("echo", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  TcpServer::Options options;
  options.max_frame_bytes = 1024;
  auto server = TcpServer::Start(&backend, 0, options).value();

  TcpClientTransport client("127.0.0.1", server->port());
  EXPECT_FALSE(client.Call("echo", Bytes(4096, 0xab)).ok());
  // Small frames still work on a fresh connection.
  EXPECT_TRUE(client.Call("echo", Bytes(64, 0xcd)).ok());
}

// --- Wire-error encoding (satellite: status codes over the wire) ---

TEST(WireErrorTest, EveryStatusCodeRoundTrips) {
  using util::StatusCode;
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kPermissionDenied,
        StatusCode::kUnauthenticated, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kCorruption,
        StatusCode::kIoError, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kResourceExhausted}) {
    util::Status original(code, "the reason");
    util::Status decoded = DecodeWireError(EncodeWireError(original));
    EXPECT_EQ(decoded.code(), code) << util::StatusCodeToString(code);
    EXPECT_EQ(decoded.message(), "the reason");
    EXPECT_EQ(StatusCodeFromWireCode(WireCodeFromStatus(code)), code);
  }
}

TEST(WireErrorTest, WireNumberingIsStable) {
  // Persistent contract (docs/PROTOCOL.md): codes 0..14 in declaration
  // order. Renumbering breaks mixed-version deployments.
  EXPECT_EQ(WireCodeFromStatus(util::StatusCode::kOk), 0);
  EXPECT_EQ(WireCodeFromStatus(util::StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(WireCodeFromStatus(util::StatusCode::kIoError), 9);
  EXPECT_EQ(WireCodeFromStatus(util::StatusCode::kDeadlineExceeded), 12);
  EXPECT_EQ(WireCodeFromStatus(util::StatusCode::kUnavailable), 13);
  EXPECT_EQ(WireCodeFromStatus(util::StatusCode::kResourceExhausted), 14);
}

TEST(WireErrorTest, LegacyPlainTextPayloadStillDecodes) {
  util::Status decoded = DecodeWireError(BytesFromString("old-style error"));
  EXPECT_EQ(decoded.code(), util::StatusCode::kInternal);
  EXPECT_NE(decoded.message().find("old-style error"), std::string::npos);
}

TEST(WireErrorTest, ServerErrorCodeSurvivesTheSocket) {
  InProcessTransport backend;
  backend.Register("fail", [](const Bytes&) -> util::Result<Bytes> {
    return util::Status::ResourceExhausted("try later");
  });
  auto server = TcpServer::Start(&backend, 0).value();
  TcpClientTransport client("127.0.0.1", server->port());
  auto response = client.Call("fail", {});
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsResourceExhausted())
      << response.status().ToString();
  EXPECT_NE(response.status().message().find("try later"), std::string::npos);
}

}  // namespace
}  // namespace mws::wire
