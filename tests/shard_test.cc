// Tests for the sharded warehouse: consistent-hash shard placement, the
// router's id-space / session / cursor algebra, the 1-vs-N equivalence
// property (same client script, byte-identical plaintexts and identical
// per-item outcomes regardless of shard count), per-shard fault
// degradation, and crash-restart of a shard under live traffic with an
// exactly-once audit.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/sharded.h"
#include "src/store/kvstore.h"
#include "src/util/fault.h"
#include "src/wire/messages.h"
#include "src/wire/router.h"

namespace mws {
namespace {

using client::ReceivedMessage;
using sim::ShardedWarehouse;
using util::Bytes;
using util::BytesFromString;
using util::StringFromBytes;
using wire::ShardMap;
using wire::ShardRouter;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("mwsibe_shard_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

std::vector<std::string> ZoneAttributes(size_t n) {
  std::vector<std::string> attrs;
  for (size_t a = 0; a < n; ++a) {
    attrs.push_back("ELECTRIC-ZONE-" + std::to_string(a));
  }
  return attrs;
}

// --- ShardMap placement ---

TEST(ShardMapTest, DeterministicAndCoversAllShards) {
  ShardMap a(4), b(4);
  std::set<size_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "meter-" + std::to_string(i);
    size_t shard = a.ShardFor(key);
    EXPECT_EQ(shard, b.ShardFor(key)) << key;
    EXPECT_LT(shard, 4u);
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardMapTest, SingleShardMapsEverythingToZero) {
  ShardMap map(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(map.ShardFor("k" + std::to_string(i)), 0u);
  }
}

TEST(ShardMapTest, VirtualNodesKeepLoadBalanced) {
  ShardMap map(4);
  std::vector<size_t> load(4, 0);
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    ++load[map.ShardFor("attribute/" + std::to_string(i))];
  }
  // With 64 vnodes/shard the peak/mean imbalance stays well inside 2x;
  // assert a loose envelope so the test pins "balanced", not one ring.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(load[s], kKeys / 16) << "shard " << s << " starved";
    EXPECT_LT(load[s], kKeys / 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardMapTest, VersionParticipatesInPlacement) {
  ShardMap v1(4, /*version=*/1), v2(4, /*version=*/2);
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(i);
    if (v1.ShardFor(key) != v2.ShardFor(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardMapTest, GrowingTheFleetMovesOnlyToTheNewShard) {
  // Consistent hashing's defining property: adding shard 4 leaves the
  // old shards' ring points in place, so a key either stays put or
  // moves to the NEW shard — and only ~1/5 of keys move at all.
  ShardMap four(4), five(5);
  constexpr int kKeys = 20000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "meter/" + std::to_string(i);
    size_t before = four.ShardFor(key);
    size_t after = five.ShardFor(key);
    if (before != after) {
      EXPECT_EQ(after, 4u) << "key moved between old shards: " << key;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys * 2 / 5);  // ~20% expected; 40% is the alarm line
}

// --- Router id-space and session algebra ---

TEST(RouterAlgebraTest, RouterIdIsInjectiveAndOrderPreserving) {
  constexpr size_t kShards = 4;
  std::set<uint64_t> ids;
  for (size_t shard = 0; shard < kShards; ++shard) {
    uint64_t previous = 0;
    for (uint64_t local = 1; local <= 200; ++local) {
      uint64_t id = ShardRouter::RouterId(local, shard, kShards);
      EXPECT_TRUE(ids.insert(id).second) << "collision at " << id;
      EXPECT_GT(id, previous);
      previous = id;
    }
  }
  // Local id 0 ("no message") is preserved, never remapped onto a shard.
  EXPECT_EQ(ShardRouter::RouterId(0, 3, kShards), 0u);
}

TEST(RouterAlgebraTest, LocalAfterIsTheExactCursorInverse) {
  // LocalAfter(A, s, N) must be the largest local L with
  // RouterId(L) <= A — brute-force the whole small domain.
  for (size_t shards = 1; shards <= 5; ++shards) {
    for (size_t shard = 0; shard < shards; ++shard) {
      for (uint64_t after = 0; after <= 300; ++after) {
        uint64_t expected = 0;
        for (uint64_t local = 1; local <= 400; ++local) {
          if (ShardRouter::RouterId(local, shard, shards) <= after) {
            expected = local;
          }
        }
        EXPECT_EQ(ShardRouter::LocalAfter(after, shard, shards), expected)
            << "after=" << after << " shard=" << shard << " N=" << shards;
      }
    }
  }
}

TEST(RouterAlgebraTest, CompositeSessionRoundTrip) {
  std::vector<Bytes> sessions = {BytesFromString("alpha"), Bytes{},
                                 BytesFromString("gamma-session")};
  Bytes blob = ShardRouter::EncodeCompositeSession(sessions);
  auto decoded = ShardRouter::DecodeCompositeSession(blob, 3);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), sessions);
}

TEST(RouterAlgebraTest, CompositeSessionRejectsMalformedBlobs) {
  std::vector<Bytes> sessions = {BytesFromString("s0"), BytesFromString("s1")};
  Bytes blob = ShardRouter::EncodeCompositeSession(sessions);

  // Wrong shard count (fleet resized between auth and retrieve).
  EXPECT_FALSE(ShardRouter::DecodeCompositeSession(blob, 3).ok());
  // Unknown version byte.
  Bytes bad_version = blob;
  bad_version[0] = 9;
  EXPECT_FALSE(ShardRouter::DecodeCompositeSession(bad_version, 2).ok());
  // Truncation at every byte boundary.
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    Bytes torn(blob.begin(), blob.begin() + cut);
    EXPECT_FALSE(ShardRouter::DecodeCompositeSession(torn, 2).ok())
        << "cut=" << cut;
  }
  // Trailing garbage.
  Bytes padded = blob;
  padded.push_back(0x5a);
  EXPECT_FALSE(ShardRouter::DecodeCompositeSession(padded, 2).ok());
  // A raw (non-composite) gatekeeper session must not parse.
  EXPECT_FALSE(
      ShardRouter::DecodeCompositeSession(BytesFromString("rawsession"), 2)
          .ok());
}

// --- 1-vs-N equivalence ---

struct ScriptResult {
  std::vector<std::string> plaintexts;            // sorted
  std::vector<std::pair<bool, bool>> outcomes;    // (ok, deduplicated)
  std::vector<uint64_t> retrieved_ids;            // in retrieval order
  size_t stored = 0;
  uint64_t dedup_hits = 0;
};

/// The client script run against a warehouse of `shard_count` shards:
/// batch deposit with an intra-batch retransmit, a full batch replay, a
/// single-shot deposit replayed once, then full retrieve-and-decrypt.
/// Everything a client can observe is captured for comparison.
ScriptResult RunScript(size_t shard_count) {
  ShardedWarehouse::Options options;
  options.shard_count = shard_count;
  auto warehouse = ShardedWarehouse::Create(options).value();
  std::vector<std::string> attrs = ZoneAttributes(8);
  client::ReceivingClient* company =
      warehouse->MakeCompany("CO-1", attrs).value();
  client::SmartDevice* device = warehouse->MakeDevice("SD-1").value();

  std::vector<std::string> payloads;
  wire::DepositBatchRequest batch;
  for (size_t a = 0; a < attrs.size(); ++a) {
    std::string payload = "reading-" + std::to_string(a);
    payloads.push_back(payload);
    batch.items.push_back(
        device->BuildDeposit(attrs[a], BytesFromString(payload)).value());
  }
  // Intra-batch retransmit: same sealed request appended again. The
  // second occurrence must dedup against the first wherever it lands.
  batch.items.push_back(batch.items[0]);

  ScriptResult result;
  Bytes encoded = batch.Encode();
  for (int send = 0; send < 2; ++send) {  // second send = full replay
    auto raw = warehouse->client_transport()->Call("mws.deposit_batch",
                                                   encoded);
    EXPECT_TRUE(raw.ok()) << raw.status().message();
    auto response = wire::DepositBatchResponse::Decode(raw.value()).value();
    for (const auto& item : response.items) {
      result.outcomes.emplace_back(item.ok, item.deduplicated);
    }
  }

  // Single-shot deposit, replayed once: both sends must ack the same id.
  payloads.push_back("single-reading");
  wire::DepositRequest single =
      device->BuildDeposit(attrs[2], BytesFromString("single-reading"))
          .value();
  Bytes single_encoded = single.Encode();
  uint64_t acked_ids[2] = {0, 0};
  for (int send = 0; send < 2; ++send) {
    auto raw =
        warehouse->client_transport()->Call("mws.deposit", single_encoded);
    EXPECT_TRUE(raw.ok()) << raw.status().message();
    acked_ids[send] =
        wire::DepositResponse::Decode(raw.value()).value().message_id;
  }
  EXPECT_EQ(acked_ids[0], acked_ids[1]) << "replay minted a fresh id";

  result.stored = warehouse->TotalStored();
  result.dedup_hits = warehouse->TotalDedupHits();

  auto received = company->FetchAndDecrypt().value();
  for (const ReceivedMessage& m : received) {
    result.retrieved_ids.push_back(m.message_id);
    result.plaintexts.push_back(StringFromBytes(m.plaintext));
  }
  std::sort(result.plaintexts.begin(), result.plaintexts.end());

  // The retrieved plaintext multiset is exactly the deposited payloads.
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(result.plaintexts, payloads);
  // Merged retrieval order is strictly ascending in router-id space.
  EXPECT_TRUE(std::is_sorted(result.retrieved_ids.begin(),
                             result.retrieved_ids.end()));
  EXPECT_EQ(std::set<uint64_t>(result.retrieved_ids.begin(),
                               result.retrieved_ids.end())
                .size(),
            result.retrieved_ids.size());

  if (shard_count > 1) {
    size_t shards_hit = 0;
    for (size_t i = 0; i < shard_count; ++i) {
      if (warehouse->router().shard_calls(i) > 0) ++shards_hit;
    }
    EXPECT_GE(shards_hit, 2u) << "workload never actually sharded";
  }
  return result;
}

TEST(ShardEquivalenceTest, OneShardAndFourShardsAgreeByteForByte) {
  ScriptResult one = RunScript(1);
  ScriptResult four = RunScript(4);
  // Byte-identical plaintexts, identical per-item outcomes (including
  // every dedup decision), identical warehouse totals. Message ids are
  // NOT compared — the router id space is allowed to differ.
  EXPECT_EQ(one.plaintexts, four.plaintexts);
  EXPECT_EQ(one.outcomes, four.outcomes);
  EXPECT_EQ(one.stored, four.stored);
  EXPECT_EQ(one.dedup_hits, four.dedup_hits);
  EXPECT_EQ(one.retrieved_ids.size(), four.retrieved_ids.size());
}

TEST(ShardEquivalenceTest, ChunkedRetrievalMatchesFullAcrossShards) {
  ShardedWarehouse::Options options;
  options.shard_count = 4;
  auto warehouse = ShardedWarehouse::Create(options).value();
  std::vector<std::string> attrs = ZoneAttributes(6);
  client::ReceivingClient* company =
      warehouse->MakeCompany("CO-1", attrs).value();
  client::SmartDevice* device = warehouse->MakeDevice("SD-1").value();

  std::vector<std::pair<ibe::Attribute, Bytes>> readings;
  for (int i = 0; i < 25; ++i) {
    readings.emplace_back(attrs[i % attrs.size()],
                          BytesFromString("r-" + std::to_string(i)));
  }
  auto outcomes = device->DepositMany(readings).value();
  for (const auto& outcome : outcomes) ASSERT_TRUE(outcome.ok());

  auto full = company->FetchAndDecrypt().value();
  // chunk_size 4 < 25/4 per shard forces multi-chunk pagination with
  // trims at merge boundaries — the token must still arrive exactly on
  // the final chunk.
  auto chunked = company->FetchAndDecryptBulk(/*after_id=*/0,
                                              /*from_micros=*/0,
                                              /*to_micros=*/0,
                                              /*chunk_size=*/4).value();
  ASSERT_EQ(full.size(), chunked.size());
  ASSERT_EQ(full.size(), readings.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].message_id, chunked[i].message_id);
    EXPECT_EQ(full[i].aid, chunked[i].aid);
    EXPECT_EQ(full[i].plaintext, chunked[i].plaintext);
  }
}

// --- Per-shard fault degradation ---

TEST(ShardFaultTest, DeadShardDegradesToPerItemUnavailable) {
  ShardedWarehouse::Options options;
  options.shard_count = 3;
  options.resilience = true;
  auto warehouse = ShardedWarehouse::Create(options).value();
  std::vector<std::string> attrs = ZoneAttributes(9);
  client::ReceivingClient* company =
      warehouse->MakeCompany("CO-1", attrs).value();
  client::SmartDevice* device = warehouse->MakeDevice("SD-1").value();

  // Pick the victim shard by where the attributes actually live.
  const ShardMap& map = warehouse->router().map();
  size_t victim = map.ShardFor(attrs[0]);
  size_t on_victim = 0;
  for (const auto& attr : attrs) {
    if (map.ShardFor(attr) == victim) ++on_victim;
  }
  ASSERT_GT(on_victim, 0u);
  ASSERT_LT(on_victim, attrs.size()) << "every attribute on one shard";

  wire::DepositBatchRequest batch;
  for (size_t a = 0; a < attrs.size(); ++a) {
    batch.items.push_back(
        device->BuildDeposit(attrs[a],
                             BytesFromString("m-" + std::to_string(a)))
            .value());
  }
  Bytes encoded = batch.Encode();

  warehouse->SetShardDown(victim, true);
  auto raw = warehouse->client_transport()->Call("mws.deposit_batch", encoded);
  ASSERT_TRUE(raw.ok());
  auto degraded = wire::DepositBatchResponse::Decode(raw.value()).value();
  ASSERT_EQ(degraded.items.size(), attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    if (map.ShardFor(attrs[a]) == victim) {
      EXPECT_FALSE(degraded.items[a].ok);
      util::Status status = wire::DecodeWireError(degraded.items[a].error);
      EXPECT_EQ(status.code(), util::StatusCode::kUnavailable)
          << status.message();
      EXPECT_TRUE(util::IsRetryableCode(status.code()));
    } else {
      EXPECT_TRUE(degraded.items[a].ok) << "healthy shard item failed";
      EXPECT_FALSE(degraded.items[a].deduplicated);
    }
  }
  EXPECT_EQ(warehouse->TotalStored(), attrs.size() - on_victim);

  // Shard returns; the client retries the SAME batch. Previously-acked
  // items dedup, previously-failed items land fresh: exactly-once.
  warehouse->SetShardDown(victim, false);
  raw = warehouse->client_transport()->Call("mws.deposit_batch", encoded);
  ASSERT_TRUE(raw.ok());
  auto retried = wire::DepositBatchResponse::Decode(raw.value()).value();
  for (size_t a = 0; a < attrs.size(); ++a) {
    EXPECT_TRUE(retried.items[a].ok);
    bool was_acked = map.ShardFor(attrs[a]) != victim;
    EXPECT_EQ(retried.items[a].deduplicated, was_acked) << "item " << a;
  }
  EXPECT_EQ(warehouse->TotalStored(), attrs.size());
  EXPECT_EQ(warehouse->TotalDedupHits(), attrs.size() - on_victim);

  // Every message is retrievable exactly once.
  auto received = company->FetchAndDecrypt().value();
  std::set<std::string> unique;
  for (const auto& m : received) unique.insert(StringFromBytes(m.plaintext));
  EXPECT_EQ(received.size(), attrs.size());
  EXPECT_EQ(unique.size(), attrs.size());
}

TEST(ShardFaultTest, TransientDropsAbsorbedBelowTheRouter) {
  ShardedWarehouse::Options options;
  options.shard_count = 3;
  options.resilience = true;
  options.retry.max_attempts = 6;
  // The point here is duplicate-absorption, not budget exhaustion (the
  // retry suite owns that) — so give the budget headroom.
  options.retry.retry_budget = 1000.0;
  auto warehouse = ShardedWarehouse::Create(options).value();
  std::vector<std::string> attrs = ZoneAttributes(6);
  client::ReceivingClient* company =
      warehouse->MakeCompany("CO-1", attrs).value();
  client::SmartDevice* device = warehouse->MakeDevice("SD-1").value();

  // One flaky shard — the one that actually serves attrs[0], so the
  // rule is guaranteed traffic: 30% of its responses vanish after the
  // handler ran, the fault that manufactures duplicate deliveries. The
  // per-shard retry layer replays; shard-local dedup absorbs.
  size_t flaky = warehouse->router().map().ShardFor(attrs[0]);
  warehouse->shard_injector(flaky)->AddRule(
      {.kind = util::FaultKind::kConnectionDrop,
       .pattern = "transport.call/mws.deposit",
       .probability = 0.15,
       .message = "injected response drop"});

  constexpr int kMessages = 30;
  std::set<uint64_t> acked;
  for (int i = 0; i < kMessages; ++i) {
    auto id = device->DepositMessage(attrs[i % attrs.size()],
                                     BytesFromString("p" + std::to_string(i)));
    ASSERT_TRUE(id.ok()) << i << ": " << id.status().message();
    EXPECT_TRUE(acked.insert(id.value()).second) << "duplicate ack id";
  }
  EXPECT_EQ(warehouse->TotalStored(), static_cast<size_t>(kMessages));
  // At least one drop actually fired and was absorbed as a dedup replay.
  EXPECT_GT(warehouse->TotalDedupHits(), 0u);

  auto received = company->FetchAndDecrypt().value();
  std::set<std::string> unique;
  for (const auto& m : received) unique.insert(StringFromBytes(m.plaintext));
  EXPECT_EQ(received.size(), static_cast<size_t>(kMessages));
  EXPECT_EQ(unique.size(), static_cast<size_t>(kMessages));
}

// --- Shard restart under live traffic ---

class ShardRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    for (size_t i = 0; i < 4; ++i) {
      store::KvStore::RemoveFiles(base_ + ".s" + std::to_string(i));
    }
  }
  void TearDown() override {
    for (size_t i = 0; i < 4; ++i) {
      store::KvStore::RemoveFiles(base_ + ".s" + std::to_string(i));
    }
  }
  std::string base_;
};

TEST_F(ShardRestartTest, RestartLosesNothingAndResurrectsNothing) {
  ShardedWarehouse::Options options;
  options.shard_count = 2;
  options.store_path_base = base_;
  auto warehouse = ShardedWarehouse::Create(options).value();
  std::vector<std::string> attrs = ZoneAttributes(6);
  client::ReceivingClient* company =
      warehouse->MakeCompany("CO-1", attrs).value();
  client::SmartDevice* device = warehouse->MakeDevice("SD-1").value();

  // Wave 1, acked before the crash.
  wire::DepositBatchRequest wave1;
  for (size_t a = 0; a < attrs.size(); ++a) {
    wave1.items.push_back(
        device->BuildDeposit(attrs[a],
                             BytesFromString("pre-" + std::to_string(a)))
            .value());
  }
  Bytes wave1_encoded = wave1.Encode();
  auto raw =
      warehouse->client_transport()->Call("mws.deposit_batch", wave1_encoded);
  ASSERT_TRUE(raw.ok());
  auto first = wire::DepositBatchResponse::Decode(raw.value()).value();
  std::vector<uint64_t> wave1_ids;
  for (const auto& item : first.items) {
    ASSERT_TRUE(item.ok);
    wave1_ids.push_back(item.message_id);
  }

  // An authenticated session from before the crash...
  ASSERT_TRUE(company->Authenticate().ok());

  // Both shards crash and recover from their WAL + checkpoint files.
  ASSERT_TRUE(warehouse->RestartShard(0).ok());
  ASSERT_TRUE(warehouse->RestartShard(1).ok());

  // ...does not survive it: gatekeeper sessions are process-local.
  EXPECT_FALSE(company->Retrieve(0).ok());

  // The device replays wave 1 (it never saw a crash, only silence):
  // every item dedups against the recovered markers with its original
  // id — nothing lost, nothing double-stored.
  raw = warehouse->client_transport()->Call("mws.deposit_batch",
                                            wave1_encoded);
  ASSERT_TRUE(raw.ok());
  auto replay = wire::DepositBatchResponse::Decode(raw.value()).value();
  ASSERT_EQ(replay.items.size(), wave1_ids.size());
  for (size_t a = 0; a < replay.items.size(); ++a) {
    EXPECT_TRUE(replay.items[a].ok);
    EXPECT_TRUE(replay.items[a].deduplicated) << "item " << a;
    EXPECT_EQ(replay.items[a].message_id, wave1_ids[a]) << "item " << a;
  }

  // Wave 2, deposited on the recovered fleet, mints fresh ids above the
  // recovered counters.
  wire::DepositBatchRequest wave2;
  for (size_t a = 0; a < attrs.size(); ++a) {
    wave2.items.push_back(
        device->BuildDeposit(attrs[a],
                             BytesFromString("post-" + std::to_string(a)))
            .value());
  }
  raw = warehouse->client_transport()->Call("mws.deposit_batch",
                                            wave2.Encode());
  ASSERT_TRUE(raw.ok());
  auto second = wire::DepositBatchResponse::Decode(raw.value()).value();
  for (const auto& item : second.items) {
    ASSERT_TRUE(item.ok);
    EXPECT_FALSE(item.deduplicated);
    EXPECT_EQ(std::count(wave1_ids.begin(), wave1_ids.end(),
                         item.message_id),
              0)
        << "fresh deposit reused a pre-crash id";
  }

  EXPECT_EQ(warehouse->TotalStored(), attrs.size() * 2);

  // Exactly-once, end to end: a fresh retrieval decrypts each payload
  // exactly once.
  auto received = company->FetchAndDecrypt().value();
  std::set<std::string> unique;
  for (const auto& m : received) unique.insert(StringFromBytes(m.plaintext));
  EXPECT_EQ(received.size(), attrs.size() * 2);
  EXPECT_EQ(unique.size(), attrs.size() * 2);
}

TEST_F(ShardRestartTest, CompactedShardRecoversUnderRouter) {
  // Deposit through the router with aggressive auto-compaction plus a
  // retention prune, restart a shard, and verify the fleet still serves
  // the full live set — the checkpoint/WAL recovery path exercised in
  // its deployment position rather than on a bare store.
  ShardedWarehouse::Options options;
  options.shard_count = 2;
  options.store_path_base = base_;
  options.compact_threshold_bytes = 16 * 1024;
  auto warehouse = ShardedWarehouse::Create(options).value();
  std::vector<std::string> attrs = ZoneAttributes(4);
  client::ReceivingClient* company =
      warehouse->MakeCompany("CO-1", attrs).value();
  client::SmartDevice* device = warehouse->MakeDevice("SD-1").value();

  std::vector<std::pair<ibe::Attribute, Bytes>> readings;
  for (int i = 0; i < 40; ++i) {
    readings.emplace_back(attrs[i % attrs.size()],
                          BytesFromString("live-" + std::to_string(i)));
  }
  auto outcomes = device->DepositMany(readings).value();
  std::vector<uint64_t> ids;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok());
    ids.push_back(outcome.value());
  }
  // Retention: consume the first half of the stream, then prune it.
  std::sort(ids.begin(), ids.end());
  uint64_t horizon = ids[ids.size() / 2 - 1];
  auto pruned = warehouse->PruneThrough(horizon);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned.value(), ids.size() / 2);
  ASSERT_TRUE(warehouse->CompactAll().ok());

  ASSERT_TRUE(warehouse->RestartShard(0).ok());
  ASSERT_TRUE(warehouse->RestartShard(1).ok());

  EXPECT_EQ(warehouse->TotalStored(), ids.size() / 2);
  auto received = company->FetchAndDecrypt().value();
  EXPECT_EQ(received.size(), ids.size() / 2);
  std::set<std::string> unique;
  for (const auto& m : received) unique.insert(StringFromBytes(m.plaintext));
  EXPECT_EQ(unique.size(), ids.size() / 2);
  // The pruned (tombstoned) half stays gone after checkpoint recovery.
  for (const auto& m : received) {
    EXPECT_GT(m.message_id, horizon);
  }
}

}  // namespace
}  // namespace mws
