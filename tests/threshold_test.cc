#include <gtest/gtest.h>

#include "src/ibe/hybrid.h"
#include "src/math/params.h"
#include "src/pkg/threshold.h"
#include "src/util/random.h"

namespace mws::pkg {
namespace {

using ibe::BfIbe;
using math::GetParams;
using math::ParamPreset;
using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;

struct ThresholdCase {
  size_t threshold;
  size_t n;
};

class ThresholdPkgTest : public ::testing::TestWithParam<ThresholdCase> {
 protected:
  ThresholdPkgTest()
      : group_(GetParams(ParamPreset::kSmall)),
        tpkg_(group_, GetParam().threshold, GetParam().n),
        ibe_(group_),
        rng_(5) {}

  const math::TypeAParams& group_;
  ThresholdPkg tpkg_;
  BfIbe ibe_;
  DeterministicRandom rng_;
};

TEST_P(ThresholdPkgTest, DealProducesVerifiableShares) {
  auto dealing = tpkg_.Deal(rng_);
  ASSERT_TRUE(dealing.ok()) << dealing.status();
  EXPECT_EQ(dealing->shares.size(), GetParam().n);
  EXPECT_EQ(dealing->commitments.size(), GetParam().threshold);
  for (const auto& share : dealing->shares) {
    EXPECT_TRUE(tpkg_.VerifyShare(dealing->commitments, share));
  }
  // A corrupted share fails verification.
  auto bad = dealing->shares[0];
  bad.value = math::BigInt::Mod(bad.value + math::BigInt(1), group_.q());
  EXPECT_FALSE(tpkg_.VerifyShare(dealing->commitments, bad));
}

TEST_P(ThresholdPkgTest, ThresholdExtractionMatchesCentralized) {
  auto dealing = tpkg_.Deal(rng_).value();
  Bytes identity = BytesFromString("ELECTRIC-APT-SV-CA-nonce1");
  math::EcPoint q_id = ibe_.HashToPoint(identity);

  // Any `threshold` of the n servers respond.
  std::vector<ThresholdPkg::PartialKey> partials;
  for (size_t i = 0; i < GetParam().threshold; ++i) {
    partials.push_back(
        tpkg_.PartialExtract(dealing.shares[dealing.shares.size() - 1 - i],
                             q_id));
  }
  auto combined = tpkg_.Combine(partials);
  ASSERT_TRUE(combined.ok()) << combined.status();

  // The combined key must decrypt a message encrypted under the dealt
  // P_pub — i.e. it equals s * Q_ID without s ever existing in one place.
  Bytes message = BytesFromString("threshold-extracted decryption works");
  auto ct = ibe_.Encrypt(dealing.params, identity, message, rng_);
  EXPECT_EQ(ibe_.Decrypt(dealing.params, combined.value(), ct), message);
}

TEST_P(ThresholdPkgTest, DifferentSubsetsSameKey) {
  if (GetParam().threshold == GetParam().n) GTEST_SKIP();
  auto dealing = tpkg_.Deal(rng_).value();
  math::EcPoint q_id = ibe_.HashToPoint(BytesFromString("id"));
  std::vector<ThresholdPkg::PartialKey> first, second;
  for (size_t i = 0; i < GetParam().threshold; ++i) {
    first.push_back(tpkg_.PartialExtract(dealing.shares[i], q_id));
    second.push_back(
        tpkg_.PartialExtract(dealing.shares[i + 1], q_id));
  }
  EXPECT_EQ(tpkg_.Combine(first).value().d,
            tpkg_.Combine(second).value().d);
}

TEST_P(ThresholdPkgTest, TooFewPartialsFail) {
  if (GetParam().threshold < 2) GTEST_SKIP();
  auto dealing = tpkg_.Deal(rng_).value();
  math::EcPoint q_id = ibe_.HashToPoint(BytesFromString("id"));
  std::vector<ThresholdPkg::PartialKey> partials;
  for (size_t i = 0; i + 1 < GetParam().threshold; ++i) {
    partials.push_back(tpkg_.PartialExtract(dealing.shares[i], q_id));
  }
  EXPECT_FALSE(tpkg_.Combine(partials).ok());
}

TEST_P(ThresholdPkgTest, DuplicatePartialsRejected) {
  auto dealing = tpkg_.Deal(rng_).value();
  math::EcPoint q_id = ibe_.HashToPoint(BytesFromString("id"));
  std::vector<ThresholdPkg::PartialKey> partials;
  for (size_t i = 0; i < GetParam().threshold; ++i) {
    partials.push_back(tpkg_.PartialExtract(dealing.shares[0], q_id));
  }
  if (GetParam().threshold > 1) {
    EXPECT_FALSE(tpkg_.Combine(partials).ok());
  }
}

TEST_P(ThresholdPkgTest, PartialVerification) {
  auto dealing = tpkg_.Deal(rng_).value();
  math::EcPoint q_id = ibe_.HashToPoint(BytesFromString("id"));
  auto good = tpkg_.PartialExtract(dealing.shares[0], q_id);
  EXPECT_TRUE(tpkg_.VerifyPartial(dealing.commitments, q_id, good));

  // A malicious server's bogus partial is caught before combining.
  auto bad = good;
  bad.d = group_.curve().Double(bad.d);
  EXPECT_FALSE(tpkg_.VerifyPartial(dealing.commitments, q_id, bad));
  auto infinity = good;
  infinity.d = math::EcPoint::Infinity();
  EXPECT_FALSE(tpkg_.VerifyPartial(dealing.commitments, q_id, infinity));
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ThresholdPkgTest,
    ::testing::Values(ThresholdCase{1, 1}, ThresholdCase{2, 3},
                      ThresholdCase{3, 5}, ThresholdCase{5, 5}),
    [](const ::testing::TestParamInfo<ThresholdCase>& info) {
      return "t" + std::to_string(info.param.threshold) + "of" +
             std::to_string(info.param.n);
    });

TEST(ThresholdPkgValidationTest, RejectsBadConfiguration) {
  const auto& group = GetParams(ParamPreset::kSmall);
  DeterministicRandom rng(1);
  EXPECT_FALSE(ThresholdPkg(group, 0, 3).Deal(rng).ok());
  EXPECT_FALSE(ThresholdPkg(group, 4, 3).Deal(rng).ok());
}

TEST(ThresholdPkgValidationTest, ZeroIndexPartialRejected) {
  const auto& group = GetParams(ParamPreset::kSmall);
  DeterministicRandom rng(2);
  ThresholdPkg tpkg(group, 1, 1);
  auto dealing = tpkg.Deal(rng).value();
  BfIbe ibe(group);
  auto partial = tpkg.PartialExtract(dealing.shares[0],
                                     ibe.HashToPoint(BytesFromString("id")));
  partial.index = 0;
  EXPECT_FALSE(tpkg.Combine({partial}).ok());
}

}  // namespace
}  // namespace mws::pkg
