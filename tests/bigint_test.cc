#include <gtest/gtest.h>

#include <cstdint>

#include "src/math/bigint.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDecimal(), "0");
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).ToDecimal(), "42");
  EXPECT_EQ(BigInt(-42).ToDecimal(), "-42");
  EXPECT_EQ(BigInt(int64_t{-1}).ToDecimal(), "-1");
  EXPECT_EQ(BigInt(uint64_t{UINT64_MAX}).ToDecimal(), "18446744073709551615");
  EXPECT_EQ(BigInt(INT64_MIN).ToDecimal(), "-9223372036854775808");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "-1",
                         "999999999999999999999999999999",
                         "123456789012345678901234567890123456789",
                         "-98765432109876543210"};
  for (const char* s : cases) {
    auto v = BigInt::FromDecimal(s);
    ASSERT_TRUE(v.ok()) << s;
    EXPECT_EQ(v.value().ToDecimal(), s);
  }
}

TEST(BigIntTest, HexRoundTrip) {
  auto v = BigInt::FromHex("deadbeefcafe1234567890abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().ToHex(), "deadbeefcafe1234567890abcdef");
}

TEST(BigIntTest, ParseErrors) {
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
  EXPECT_FALSE(BigInt::FromDecimal("-").ok());
  EXPECT_FALSE(BigInt::FromDecimal("12a").ok());
  EXPECT_FALSE(BigInt::FromHex("").ok());
  EXPECT_FALSE(BigInt::FromHex("xyz").ok());
}

TEST(BigIntTest, AdditionCarries) {
  auto a = BigInt::FromHex("ffffffffffffffffffffffffffffffff").value();
  BigInt b = a + BigInt(1);
  EXPECT_EQ(b.ToHex(), "100000000000000000000000000000000");
  EXPECT_EQ((b - BigInt(1)).ToHex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigIntTest, SignedArithmetic) {
  BigInt a(100), b(-30);
  EXPECT_EQ((a + b).ToDecimal(), "70");
  EXPECT_EQ((b + a).ToDecimal(), "70");
  EXPECT_EQ((a - b).ToDecimal(), "130");
  EXPECT_EQ((b - a).ToDecimal(), "-130");
  EXPECT_EQ((a * b).ToDecimal(), "-3000");
  EXPECT_EQ((b * b).ToDecimal(), "900");
  EXPECT_EQ((-a).ToDecimal(), "-100");
}

TEST(BigIntTest, TruncatedDivision) {
  // C semantics: quotient toward zero, remainder sign of dividend.
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToDecimal(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToDecimal(), "1");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToDecimal(), "-1");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToDecimal(), "1");
}

TEST(BigIntTest, ModAlwaysNonNegative) {
  EXPECT_EQ(BigInt::Mod(BigInt(-7), BigInt(3)).ToDecimal(), "2");
  EXPECT_EQ(BigInt::Mod(BigInt(7), BigInt(3)).ToDecimal(), "1");
  EXPECT_EQ(BigInt::Mod(BigInt(-9), BigInt(3)).ToDecimal(), "0");
}

TEST(BigIntTest, MultiLimbDivision) {
  auto a = BigInt::FromDecimal(
               "340282366920938463463374607431768211456123456789")
               .value();
  auto b = BigInt::FromDecimal("18446744073709551629").value();
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
  EXPECT_FALSE(r.IsNegative());
}

TEST(BigIntTest, DivisionPropertyRandomized) {
  DeterministicRandom rng(7);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::RandomBits(rng, 40 + rng.UniformU64(400));
    BigInt b = BigInt::RandomBits(rng, 1 + rng.UniformU64(200));
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
  }
}

TEST(BigIntTest, KnuthD6AddBackCase) {
  // Crafted operands that exercise the rare "add back" correction step:
  // dividend with high limbs just below the divisor pattern.
  auto a = BigInt::FromHex(
               "800000000000000000000000000000000000000000000000"
               "0000000000000003")
               .value();
  auto b = BigInt::FromHex("8000000000000000000000000000000000000001")
               .value();
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ((one << 0), one);
  EXPECT_EQ((one << 64).ToHex(), "10000000000000000");
  EXPECT_EQ((one << 127).BitLength(), 128u);
  EXPECT_EQ(((one << 127) >> 127), one);
  EXPECT_EQ((BigInt(0xff) >> 4).ToDecimal(), "15");
  EXPECT_EQ((BigInt(1) >> 1).ToDecimal(), "0");
}

TEST(BigIntTest, BitAccess) {
  BigInt v = BigInt::FromHex("8000000000000001").value();
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(63));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_FALSE(v.Bit(64));
  EXPECT_EQ(v.BitLength(), 64u);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(5), BigInt(3));
  EXPECT_LE(BigInt(3), BigInt(3));
  EXPECT_EQ(BigInt(0), -BigInt(0));
}

TEST(BigIntTest, BytesRoundTrip) {
  util::Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt v = BigInt::FromBytesBe(b);
  EXPECT_EQ(v.ToHex(), "10203040506070809");
  EXPECT_EQ(v.ToBytesBe(9), b);
  // Padding.
  EXPECT_EQ(BigInt(1).ToBytesBe(4), (util::Bytes{0, 0, 0, 1}));
  EXPECT_EQ(BigInt(0).ToBytesBe(2), (util::Bytes{0, 0}));
}

TEST(BigIntTest, BytesLeadingZeros) {
  util::Bytes b = {0x00, 0x00, 0x12};
  EXPECT_EQ(BigInt::FromBytesBe(b).ToDecimal(), "18");
}

TEST(BigIntTest, ModPow) {
  // 2^10 mod 1000 = 24.
  EXPECT_EQ(BigInt::ModPow(BigInt(2), BigInt(10), BigInt(1000)).ToDecimal(),
            "24");
  // Fermat's little theorem for a prime.
  auto p = BigInt::FromDecimal("1000000007").value();
  EXPECT_TRUE(
      BigInt::ModPow(BigInt(12345), p - BigInt(1), p).IsOne());
  // Exponent zero.
  EXPECT_TRUE(BigInt::ModPow(BigInt(5), BigInt(0), BigInt(7)).IsOne());
  // Modulus one.
  EXPECT_TRUE(BigInt::ModPow(BigInt(5), BigInt(3), BigInt(1)).IsZero());
}

TEST(BigIntTest, ModInverse) {
  auto inv = BigInt::ModInverse(BigInt(3), BigInt(7));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv.value().ToDecimal(), "5");  // 3*5 = 15 = 1 mod 7
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());
}

TEST(BigIntTest, ModInversePropertyRandomized) {
  DeterministicRandom rng(11);
  auto p = BigInt::FromDecimal("170141183460469231731687303715884105727")
               .value();  // 2^127 - 1 (prime)
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(rng, p - BigInt(1)) + BigInt(1);
    auto inv = BigInt::ModInverse(a, p);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(BigInt::Mod(a * inv.value(), p).IsOne());
  }
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(18)).ToDecimal(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(-48), BigInt(18)).ToDecimal(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToDecimal(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToDecimal(), "1");
}

TEST(BigIntTest, PrimalityKnownValues) {
  DeterministicRandom rng(3);
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(0), rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(1), rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(2), rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(3), rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(4), rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(65537), rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(65535), rng));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(561), rng));
  // 2^127 - 1 is a Mersenne prime.
  auto m127 = BigInt::FromDecimal("170141183460469231731687303715884105727")
                  .value();
  EXPECT_TRUE(BigInt::IsProbablePrime(m127, rng));
  // 2^128 + 1 is composite (known factor 59649589127497217).
  auto f7 = (BigInt(1) << 128) + BigInt(1);
  EXPECT_FALSE(BigInt::IsProbablePrime(f7, rng));
}

TEST(BigIntTest, RandomBitsExactWidth) {
  DeterministicRandom rng(5);
  for (size_t bits : {1u, 8u, 63u, 64u, 65u, 160u}) {
    BigInt v = BigInt::RandomBits(rng, bits);
    EXPECT_EQ(v.BitLength(), bits);
  }
}

TEST(BigIntTest, RandomBelowInRange) {
  DeterministicRandom rng(6);
  BigInt bound = BigInt::FromDecimal("1000000000000000000000").value();
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(rng, bound);
    EXPECT_TRUE(v < bound);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(BigIntTest, GeneratePrimeSmall) {
  DeterministicRandom rng(8);
  BigInt p = BigInt::GeneratePrime(rng, 48);
  EXPECT_EQ(p.BitLength(), 48u);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, rng));
}

TEST(BigIntTest, MulCommutesAndAssociatesRandomized) {
  DeterministicRandom rng(9);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBits(rng, 100);
    BigInt b = BigInt::RandomBits(rng, 200);
    BigInt c = BigInt::RandomBits(rng, 60);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

}  // namespace
}  // namespace mws::math
