#include <gtest/gtest.h>

#include <memory>

#include "src/math/fp.h"
#include "src/math/fp2.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

class FpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A 256-bit prime == 3 mod 4 (secp256k1's field prime).
    p_ = BigInt::FromHex(
             "fffffffffffffffffffffffffffffffffffffffffffffffffffffffe"
             "fffffc2f")
             .value();
    auto ctx = FpCtx::Create(p_);
    ASSERT_TRUE(ctx.ok());
    ctx_ = std::move(ctx).value();
  }

  BigInt p_;
  std::unique_ptr<const FpCtx> ctx_;
};

TEST_F(FpTest, RejectsEvenModulus) {
  EXPECT_FALSE(FpCtx::Create(BigInt(8)).ok());
  EXPECT_FALSE(FpCtx::Create(BigInt(1)).ok());
}

TEST_F(FpTest, ZeroAndOne) {
  Fp zero = Fp::Zero(ctx_.get());
  Fp one = Fp::One(ctx_.get());
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(one.IsOne());
  EXPECT_FALSE(one.IsZero());
  EXPECT_EQ(zero.ToBigInt().ToDecimal(), "0");
  EXPECT_EQ(one.ToBigInt().ToDecimal(), "1");
}

TEST_F(FpTest, RoundTripThroughMontgomery) {
  DeterministicRandom rng(1);
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::RandomBelow(rng, p_);
    EXPECT_EQ(Fp::FromBigInt(ctx_.get(), v).ToBigInt(), v);
  }
}

TEST_F(FpTest, ReductionOnInput) {
  Fp a = Fp::FromBigInt(ctx_.get(), p_ + BigInt(5));
  EXPECT_EQ(a.ToBigInt().ToDecimal(), "5");
  Fp b = Fp::FromBigInt(ctx_.get(), BigInt(-1));
  EXPECT_EQ(b.ToBigInt(), p_ - BigInt(1));
}

TEST_F(FpTest, FieldAxiomsRandomized) {
  DeterministicRandom rng(2);
  for (int i = 0; i < 50; ++i) {
    Fp a = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
    Fp b = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
    Fp c = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Fp::Zero(ctx_.get()));
    EXPECT_EQ(a + a.Neg(), Fp::Zero(ctx_.get()));
    EXPECT_EQ(a.Sqr(), a * a);
    EXPECT_EQ(a.Double(), a + a);
  }
}

TEST_F(FpTest, ArithmeticMatchesBigInt) {
  DeterministicRandom rng(3);
  for (int i = 0; i < 50; ++i) {
    BigInt x = BigInt::RandomBelow(rng, p_);
    BigInt y = BigInt::RandomBelow(rng, p_);
    Fp a = Fp::FromBigInt(ctx_.get(), x);
    Fp b = Fp::FromBigInt(ctx_.get(), y);
    EXPECT_EQ((a + b).ToBigInt(), BigInt::Mod(x + y, p_));
    EXPECT_EQ((a - b).ToBigInt(), BigInt::Mod(x - y, p_));
    EXPECT_EQ((a * b).ToBigInt(), BigInt::Mod(x * y, p_));
  }
}

TEST_F(FpTest, InverseRandomized) {
  DeterministicRandom rng(4);
  for (int i = 0; i < 30; ++i) {
    BigInt x = BigInt::RandomBelow(rng, p_ - BigInt(1)) + BigInt(1);
    Fp a = Fp::FromBigInt(ctx_.get(), x);
    EXPECT_TRUE((a * a.Inv()).IsOne());
  }
}

TEST_F(FpTest, PowMatchesModPow) {
  DeterministicRandom rng(5);
  BigInt x = BigInt::RandomBelow(rng, p_);
  BigInt e = BigInt::RandomBits(rng, 100);
  Fp a = Fp::FromBigInt(ctx_.get(), x);
  EXPECT_EQ(a.Pow(e).ToBigInt(), BigInt::ModPow(x, e, p_));
  EXPECT_TRUE(a.Pow(BigInt(0)).IsOne());
}

TEST_F(FpTest, SqrtOfSquares) {
  DeterministicRandom rng(6);
  for (int i = 0; i < 20; ++i) {
    Fp a = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
    Fp sq = a.Sqr();
    auto root = sq.Sqrt();
    ASSERT_TRUE(root.ok());
    EXPECT_EQ(root.value().Sqr(), sq);
  }
}

TEST_F(FpTest, SqrtRejectsNonResidue) {
  // -1 is a non-residue when p == 3 mod 4.
  Fp minus_one = Fp::One(ctx_.get()).Neg();
  EXPECT_EQ(minus_one.Legendre(), -1);
  EXPECT_FALSE(minus_one.Sqrt().ok());
}

TEST_F(FpTest, LegendreMultiplicative) {
  DeterministicRandom rng(7);
  for (int i = 0; i < 20; ++i) {
    BigInt x = BigInt::RandomBelow(rng, p_ - BigInt(1)) + BigInt(1);
    BigInt y = BigInt::RandomBelow(rng, p_ - BigInt(1)) + BigInt(1);
    Fp a = Fp::FromBigInt(ctx_.get(), x);
    Fp b = Fp::FromBigInt(ctx_.get(), y);
    EXPECT_EQ((a * b).Legendre(), a.Legendre() * b.Legendre());
  }
  EXPECT_EQ(Fp::Zero(ctx_.get()).Legendre(), 0);
}

TEST_F(FpTest, BytesRoundTrip) {
  DeterministicRandom rng(8);
  Fp a = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
  util::Bytes b = a.ToBytes();
  EXPECT_EQ(b.size(), ctx_->byte_length());
  EXPECT_EQ(Fp::FromBytes(ctx_.get(), b), a);
}

// --- Fp2 ---

TEST_F(FpTest, Fp2Axioms) {
  DeterministicRandom rng(9);
  const FpCtx* ctx = ctx_.get();
  auto random_fp2 = [&] {
    return Fp2(Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)),
               Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)));
  };
  for (int i = 0; i < 30; ++i) {
    Fp2 a = random_fp2();
    Fp2 b = random_fp2();
    Fp2 c = random_fp2();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Sqr(), a * a);
    EXPECT_EQ(a + a.Neg(), Fp2::Zero(ctx));
    if (!a.IsZero()) {
      EXPECT_TRUE((a * a.Inv()).IsOne());
    }
  }
}

TEST_F(FpTest, Fp2ImaginaryUnitSquaresToMinusOne) {
  const FpCtx* ctx = ctx_.get();
  Fp2 i(Fp::Zero(ctx), Fp::One(ctx));
  Fp2 minus_one = Fp2::FromFp(Fp::One(ctx).Neg());
  EXPECT_EQ(i.Sqr(), minus_one);
}

TEST_F(FpTest, Fp2ConjugateIsFrobenius) {
  // For z in F_p2, z^p equals the conjugate (Frobenius endomorphism).
  DeterministicRandom rng(10);
  const FpCtx* ctx = ctx_.get();
  Fp2 z(Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)),
        Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)));
  EXPECT_EQ(z.Pow(p_), z.Conjugate());
}

TEST_F(FpTest, Fp2NormMultiplicative) {
  DeterministicRandom rng(11);
  const FpCtx* ctx = ctx_.get();
  auto norm = [](const Fp2& z) { return z.re().Sqr() + z.im().Sqr(); };
  Fp2 a(Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)),
        Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)));
  Fp2 b(Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)),
        Fp::FromBigInt(ctx, BigInt::RandomBelow(rng, p_)));
  EXPECT_EQ(norm(a * b), norm(a) * norm(b));
}

TEST_F(FpTest, Fp2PowAndBytes) {
  const FpCtx* ctx = ctx_.get();
  Fp2 z(Fp::FromU64(ctx, 3), Fp::FromU64(ctx, 4));
  EXPECT_TRUE(z.Pow(BigInt(0)).IsOne());
  EXPECT_EQ(z.Pow(BigInt(1)), z);
  EXPECT_EQ(z.Pow(BigInt(5)), z * z * z * z * z);
  EXPECT_EQ(z.ToBytes().size(), 2 * ctx->byte_length());
}

}  // namespace
}  // namespace mws::math
