#include <gtest/gtest.h>

#include <memory>

#include "src/math/ec.h"
#include "src/util/random.h"

namespace mws::math {
namespace {

using util::DeterministicRandom;

/// Tiny curve with known group structure for exhaustive checks:
/// y^2 = x^3 + x over F_103 (103 == 3 mod 4, supersingular, #E = 104).
class SmallCurveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ctx = FpCtx::Create(BigInt(103));
    ASSERT_TRUE(ctx.ok());
    ctx_ = std::move(ctx).value();
    curve_ = std::make_unique<CurveGroup>(ctx_.get(), Fp::One(ctx_.get()),
                                          Fp::Zero(ctx_.get()));
  }

  Fp El(uint64_t v) { return Fp::FromU64(ctx_.get(), v); }

  EcPoint FindPoint() {
    // Smallest x whose x^3 + x is a residue.
    for (uint64_t x = 1; x < 103; ++x) {
      Fp fx = El(x);
      auto y = (fx.Sqr() * fx + fx).Sqrt();
      if (y.ok() && !y.value().IsZero()) return EcPoint(fx, y.value());
    }
    ADD_FAILURE() << "no point found";
    return EcPoint::Infinity();
  }

  std::unique_ptr<const FpCtx> ctx_;
  std::unique_ptr<CurveGroup> curve_;
};

TEST_F(SmallCurveTest, InfinityIsIdentity) {
  EcPoint p = FindPoint();
  EcPoint inf = EcPoint::Infinity();
  EXPECT_TRUE(curve_->IsOnCurve(inf));
  EXPECT_EQ(curve_->Add(p, inf), p);
  EXPECT_EQ(curve_->Add(inf, p), p);
  EXPECT_EQ(curve_->Add(inf, inf), inf);
}

TEST_F(SmallCurveTest, AdditionInverse) {
  EcPoint p = FindPoint();
  EXPECT_EQ(curve_->Add(p, curve_->Negate(p)), EcPoint::Infinity());
}

TEST_F(SmallCurveTest, GroupOrderIs104) {
  // Supersingular curve over F_p with p == 3 mod 4 has exactly p+1 points.
  EcPoint p = FindPoint();
  EXPECT_EQ(curve_->ScalarMul(BigInt(104), p), EcPoint::Infinity());
}

TEST_F(SmallCurveTest, ExhaustivePointCount) {
  // Count solutions directly: sum over x of (1 + legendre(x^3+x)) plus 1
  // for infinity.
  int count = 1;
  for (uint64_t x = 0; x < 103; ++x) {
    Fp fx = El(x);
    Fp rhs = fx.Sqr() * fx + fx;
    if (rhs.IsZero()) {
      count += 1;
    } else if (rhs.Legendre() == 1) {
      count += 2;
    }
  }
  EXPECT_EQ(count, 104);
}

TEST_F(SmallCurveTest, ScalarMulMatchesRepeatedAdd) {
  EcPoint p = FindPoint();
  EcPoint acc = EcPoint::Infinity();
  for (int k = 0; k <= 20; ++k) {
    EXPECT_EQ(curve_->ScalarMul(BigInt(k), p), acc) << "k=" << k;
    acc = curve_->Add(acc, p);
  }
}

TEST_F(SmallCurveTest, NegativeScalar) {
  EcPoint p = FindPoint();
  EXPECT_EQ(curve_->ScalarMul(BigInt(-3), p),
            curve_->Negate(curve_->ScalarMul(BigInt(3), p)));
}

TEST_F(SmallCurveTest, DoubleMatchesAdd) {
  EcPoint p = FindPoint();
  EXPECT_EQ(curve_->Double(p), curve_->Add(p, p));
}

TEST_F(SmallCurveTest, TwoTorsionPoint) {
  // (0, 0) is on y^2 = x^3 + x and has order 2.
  EcPoint t(El(0), El(0));
  EXPECT_TRUE(curve_->IsOnCurve(t));
  EXPECT_EQ(curve_->Double(t), EcPoint::Infinity());
  EXPECT_EQ(curve_->Add(t, t), EcPoint::Infinity());
}

TEST_F(SmallCurveTest, AssociativityExhaustiveSample) {
  EcPoint p = FindPoint();
  for (int i = 1; i <= 6; ++i) {
    for (int j = 1; j <= 6; ++j) {
      EcPoint a = curve_->ScalarMul(BigInt(i), p);
      EcPoint b = curve_->ScalarMul(BigInt(j), p);
      EcPoint c = curve_->ScalarMul(BigInt(5), p);
      EXPECT_EQ(curve_->Add(curve_->Add(a, b), c),
                curve_->Add(a, curve_->Add(b, c)));
    }
  }
}

TEST_F(SmallCurveTest, SerializeRoundTrip) {
  EcPoint p = FindPoint();
  auto bytes = curve_->Serialize(p);
  auto back = curve_->Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), p);

  auto inf_bytes = curve_->Serialize(EcPoint::Infinity());
  EXPECT_EQ(inf_bytes, (util::Bytes{0x00}));
  EXPECT_EQ(curve_->Deserialize(inf_bytes).value(), EcPoint::Infinity());
}

TEST_F(SmallCurveTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(curve_->Deserialize({}).ok());
  EXPECT_FALSE(curve_->Deserialize({0x05}).ok());
  // Valid shape but not on the curve: x=1,y=1 (1 != 2 mod 103).
  util::Bytes bad = {0x04, 1, 1};
  EXPECT_FALSE(curve_->Deserialize(bad).ok());
}

TEST_F(SmallCurveTest, CompressedRoundTrip) {
  EcPoint p = FindPoint();
  auto bytes = curve_->SerializeCompressed(p);
  EXPECT_EQ(bytes.size(), 1 + ctx_->byte_length());
  auto back = curve_->DeserializeCompressed(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value(), p);
  // The negated point round-trips to itself (opposite parity tag).
  EcPoint neg = curve_->Negate(p);
  auto neg_bytes = curve_->SerializeCompressed(neg);
  EXPECT_NE(neg_bytes[0], bytes[0]);
  EXPECT_EQ(curve_->DeserializeCompressed(neg_bytes).value(), neg);
  // Infinity.
  EXPECT_EQ(curve_->SerializeCompressed(EcPoint::Infinity()),
            (util::Bytes{0x00}));
  EXPECT_EQ(curve_->DeserializeCompressed({0x00}).value(),
            EcPoint::Infinity());
  // Compressed is half the uncompressed size (plus tag).
  EXPECT_LT(bytes.size(), curve_->Serialize(p).size());
}

TEST_F(SmallCurveTest, CompressedRejectsGarbage) {
  EXPECT_FALSE(curve_->DeserializeCompressed({}).ok());
  EXPECT_FALSE(curve_->DeserializeCompressed({0x04, 1}).ok());
  // x with no curve point (x=2: 2^3+2=10, QR? try a few x until a
  // non-residue is found).
  bool found_invalid = false;
  for (uint64_t x = 1; x < 103 && !found_invalid; ++x) {
    Fp fx = El(x);
    if ((fx.Sqr() * fx + fx).Legendre() == -1) {
      util::Bytes bad = {0x02, static_cast<uint8_t>(x)};
      EXPECT_FALSE(curve_->DeserializeCompressed(bad).ok());
      found_invalid = true;
    }
  }
  EXPECT_TRUE(found_invalid);
  // Out-of-range coordinate.
  EXPECT_FALSE(curve_->DeserializeCompressed({0x02, 200}).ok());
}

TEST_F(SmallCurveTest, CompressedExhaustiveOverSubgroup) {
  EcPoint p = FindPoint();
  EcPoint acc = p;
  for (int k = 1; k < 30; ++k) {
    auto back = curve_->DeserializeCompressed(
        curve_->SerializeCompressed(acc));
    ASSERT_TRUE(back.ok()) << "k=" << k;
    EXPECT_EQ(back.value(), acc);
    acc = curve_->Add(acc, p);
  }
}

TEST_F(SmallCurveTest, DeserializeRejectsNonCanonicalCoordinate) {
  EcPoint p = FindPoint();
  auto bytes = curve_->Serialize(p);
  // Add p (=103) to the x coordinate: same residue, non-canonical bytes.
  bytes[1] = static_cast<uint8_t>(bytes[1] + 103);
  EXPECT_FALSE(curve_->Deserialize(bytes).ok());
}

/// Larger-field sanity with a 256-bit prime.
TEST(LargeCurveTest, ScalarArithmetic) {
  auto p = BigInt::FromHex(
               "fffffffffffffffffffffffffffffffffffffffffffffffffffffffe"
               "fffffc2f")
               .value();
  auto ctx = FpCtx::Create(p).value();
  CurveGroup curve(ctx.get(), Fp::One(ctx.get()), Fp::Zero(ctx.get()));
  DeterministicRandom rng(1);
  // Find a point by incrementing x.
  EcPoint base = EcPoint::Infinity();
  for (uint64_t x = 1;; ++x) {
    Fp fx = Fp::FromU64(ctx.get(), x);
    auto y = (fx.Sqr() * fx + fx).Sqrt();
    if (y.ok()) {
      base = EcPoint(fx, y.value());
      break;
    }
  }
  ASSERT_TRUE(curve.IsOnCurve(base));
  BigInt a = BigInt::RandomBits(rng, 128);
  BigInt b = BigInt::RandomBits(rng, 128);
  // (a+b)P == aP + bP.
  EXPECT_EQ(curve.ScalarMul(a + b, base),
            curve.Add(curve.ScalarMul(a, base), curve.ScalarMul(b, base)));
  // a(bP) == (ab)P.
  EXPECT_EQ(curve.ScalarMul(a, curve.ScalarMul(b, base)),
            curve.ScalarMul(a * b, base));
  // Results stay on the curve.
  EXPECT_TRUE(curve.IsOnCurve(curve.ScalarMul(a, base)));
}

}  // namespace
}  // namespace mws::math
