#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/store/flatfile.h"
#include "src/store/kvstore.h"
#include "src/store/message_db.h"
#include "src/store/policy_db.h"
#include "src/store/user_db.h"
#include "src/util/serde.h"

namespace mws::store {
namespace {

using util::Bytes;
using util::BytesFromString;

std::string TempPath(std::string name) {
  // Parameterized test names contain '/'; keep the path flat.
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  return (std::filesystem::temp_directory_path() /
          ("mwsibe_store_test_" + name + "_" +
           std::to_string(::getpid())))
      .string();
}

enum class Backend { kKvMemory, kKvDisk, kFlatMemory, kFlatDisk };

class TableTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    KvStore::RemoveFiles(path_);
    table_ = MakeTable();
  }

  void TearDown() override { KvStore::RemoveFiles(path_); }

  std::unique_ptr<Table> MakeTable() {
    switch (GetParam()) {
      case Backend::kKvMemory:
        return std::move(KvStore::Open({.path = ""}).value());
      case Backend::kKvDisk:
        return std::move(KvStore::Open({.path = path_}).value());
      case Backend::kFlatMemory:
        return std::move(FlatFileStore::Open({.path = ""}).value());
      case Backend::kFlatDisk:
        return std::move(FlatFileStore::Open({.path = path_}).value());
    }
    return nullptr;
  }

  std::string path_;
  std::unique_ptr<Table> table_;
};

TEST_P(TableTest, PutGetDelete) {
  EXPECT_TRUE(table_->Put("k1", BytesFromString("v1")).ok());
  EXPECT_TRUE(table_->Put("k2", BytesFromString("v2")).ok());
  EXPECT_EQ(table_->Get("k1").value(), BytesFromString("v1"));
  EXPECT_EQ(table_->Size(), 2u);
  EXPECT_TRUE(table_->Contains("k2"));
  EXPECT_FALSE(table_->Contains("k3"));
  EXPECT_TRUE(table_->Get("k3").status().IsNotFound());
  EXPECT_TRUE(table_->Delete("k1").ok());
  EXPECT_FALSE(table_->Contains("k1"));
  EXPECT_EQ(table_->Size(), 1u);
  // Deleting a missing key is OK.
  EXPECT_TRUE(table_->Delete("nope").ok());
}

TEST_P(TableTest, OverwriteKeepsLatest) {
  EXPECT_TRUE(table_->Put("k", BytesFromString("old")).ok());
  EXPECT_TRUE(table_->Put("k", BytesFromString("new")).ok());
  EXPECT_EQ(table_->Get("k").value(), BytesFromString("new"));
  EXPECT_EQ(table_->Size(), 1u);
}

TEST_P(TableTest, EmptyKeyAndValue) {
  EXPECT_TRUE(table_->Put("", Bytes{}).ok());
  EXPECT_TRUE(table_->Contains(""));
  EXPECT_EQ(table_->Get("").value(), Bytes{});
}

TEST_P(TableTest, BinaryValues) {
  Bytes binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<uint8_t>(i));
  EXPECT_TRUE(table_->Put("bin", binary).ok());
  EXPECT_TRUE(table_->Flush().ok());
  EXPECT_EQ(table_->Get("bin").value(), binary);
}

TEST_P(TableTest, ScanPrefixOrdered) {
  table_->Put("a/1", BytesFromString("1")).ok();
  table_->Put("a/3", BytesFromString("3")).ok();
  table_->Put("a/2", BytesFromString("2")).ok();
  table_->Put("b/1", BytesFromString("x")).ok();
  table_->Put("", BytesFromString("root")).ok();
  auto rows = table_->Scan("a/");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "a/1");
  EXPECT_EQ(rows[1].first, "a/2");
  EXPECT_EQ(rows[2].first, "a/3");
  EXPECT_EQ(table_->Scan("").size(), 5u);
  EXPECT_TRUE(table_->Scan("zzz").empty());
}

TEST_P(TableTest, PersistenceAcrossReopen) {
  if (GetParam() == Backend::kKvMemory || GetParam() == Backend::kFlatMemory) {
    GTEST_SKIP() << "memory backends are not persistent";
  }
  table_->Put("persist", BytesFromString("me")).ok();
  table_->Put("gone", BytesFromString("soon")).ok();
  table_->Delete("gone").ok();
  table_->Flush().ok();
  table_ = MakeTable();  // reopen from disk
  EXPECT_EQ(table_->Get("persist").value(), BytesFromString("me"));
  EXPECT_FALSE(table_->Contains("gone"));
  EXPECT_EQ(table_->Size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TableTest,
                         ::testing::Values(Backend::kKvMemory,
                                           Backend::kKvDisk,
                                           Backend::kFlatMemory,
                                           Backend::kFlatDisk),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           switch (info.param) {
                             case Backend::kKvMemory:
                               return "KvMemory";
                             case Backend::kKvDisk:
                               return "KvDisk";
                             case Backend::kFlatMemory:
                               return "FlatMemory";
                             case Backend::kFlatDisk:
                               return "FlatDisk";
                           }
                           return "Unknown";
                         });

TEST(KvStoreTest, RecoversFromTornTail) {
  std::string path = TempPath("torn");
  KvStore::RemoveFiles(path);
  {
    auto store = KvStore::Open({.path = path}).value();
    store->Put("a", BytesFromString("1")).ok();
    store->Put("b", BytesFromString("2")).ok();
    store->Flush().ok();
  }
  // Append garbage simulating a torn write (crash mid-record).
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x01\x00\x00", 3);
  }
  auto store = KvStore::Open({.path = path});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->Get("a").value(), BytesFromString("1"));
  EXPECT_EQ(store.value()->Get("b").value(), BytesFromString("2"));
  EXPECT_EQ(store.value()->Size(), 2u);
  // New writes after recovery land on a clean log.
  store.value()->Put("c", BytesFromString("3")).ok();
  store.value()->Flush().ok();
  auto again = KvStore::Open({.path = path});
  EXPECT_EQ(again.value()->Size(), 3u);
  KvStore::RemoveFiles(path);
}

TEST(KvStoreTest, DetectsCorruptRecordMidLog) {
  std::string path = TempPath("corrupt");
  KvStore::RemoveFiles(path);
  {
    auto store = KvStore::Open({.path = path}).value();
    store->Put("first", BytesFromString("ok")).ok();
    store->Put("second", BytesFromString("damaged")).ok();
    store->Flush().ok();
  }
  // Flip a byte inside the second record's value.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  auto store = KvStore::Open({.path = path});
  ASSERT_TRUE(store.ok());
  // First record survives; corrupt tail is dropped.
  EXPECT_TRUE(store.value()->Contains("first"));
  EXPECT_FALSE(store.value()->Contains("second"));
  KvStore::RemoveFiles(path);
}

TEST(KvStoreTest, CompactionDropsDeadRecords) {
  std::string path = TempPath("compact");
  KvStore::RemoveFiles(path);
  auto store = KvStore::Open({.path = path}).value();
  for (int i = 0; i < 10; ++i) {
    store->Put("key", BytesFromString(std::to_string(i))).ok();
  }
  store->Put("other", BytesFromString("live")).ok();
  store->Delete("other").ok();
  EXPECT_EQ(store->log_records(), 12u);
  auto dropped = store->Compact();
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 11u);
  EXPECT_EQ(store->log_records(), 1u);
  EXPECT_EQ(store->Get("key").value(), BytesFromString("9"));
  // Store still writable and recoverable after compaction.
  store->Put("post", BytesFromString("compact")).ok();
  store->Flush().ok();
  auto reopened = KvStore::Open({.path = path});
  EXPECT_EQ(reopened.value()->Size(), 2u);
  KvStore::RemoveFiles(path);
}

TEST(FlatFileTest, HumanReadableFormat) {
  std::string path = TempPath("flatfmt");
  KvStore::RemoveFiles(path);
  auto store = FlatFileStore::Open({.path = path}).value();
  store->Put("key", BytesFromString("value")).ok();
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "6b6579\t76616c7565");
  KvStore::RemoveFiles(path);
}

TEST(FlatFileTest, RejectsCorruptFile) {
  std::string path = TempPath("flatbad");
  {
    std::ofstream out(path);
    out << "not-a-valid-line\n";
  }
  EXPECT_FALSE(FlatFileStore::Open({.path = path}).ok());
  KvStore::RemoveFiles(path);
}

// --- MessageDb ---

class MessageDbTest : public ::testing::Test {
 protected:
  MessageDbTest()
      : table_(KvStore::Open({.path = ""}).value()), db_(table_.get()) {}

  StoredMessage Make(const std::string& attr, const std::string& payload) {
    StoredMessage m;
    m.u = BytesFromString("rP-" + payload);
    m.ciphertext = BytesFromString(payload);
    m.attribute = attr;
    m.nonce = BytesFromString("nonce16bytes----");
    m.device_id = "SD-1";
    m.timestamp_micros = 1234567;
    return m;
  }

  std::unique_ptr<KvStore> table_;
  MessageDb db_;
};

TEST_F(MessageDbTest, AppendAssignsSequentialIds) {
  EXPECT_EQ(db_.Append(Make("A1", "m1")).value(), 1u);
  EXPECT_EQ(db_.Append(Make("A1", "m2")).value(), 2u);
  EXPECT_EQ(db_.Append(Make("A2", "m3")).value(), 3u);
  EXPECT_EQ(db_.Count(), 3u);
}

TEST_F(MessageDbTest, RoundTripAllFields) {
  StoredMessage m = Make("ELECTRIC-APT-SV-CA", "ciphertext-bytes");
  uint64_t id = db_.Append(m).value();
  StoredMessage got = db_.Get(id).value();
  EXPECT_EQ(got.id, id);
  EXPECT_EQ(got.u, m.u);
  EXPECT_EQ(got.ciphertext, m.ciphertext);
  EXPECT_EQ(got.attribute, m.attribute);
  EXPECT_EQ(got.nonce, m.nonce);
  EXPECT_EQ(got.device_id, m.device_id);
  EXPECT_EQ(got.timestamp_micros, m.timestamp_micros);
}

TEST_F(MessageDbTest, FindByAttribute) {
  db_.Append(Make("A1", "m1")).value();
  db_.Append(Make("A2", "m2")).value();
  db_.Append(Make("A1", "m3")).value();
  auto a1 = db_.FindByAttribute("A1").value();
  ASSERT_EQ(a1.size(), 2u);
  EXPECT_EQ(a1[0].ciphertext, BytesFromString("m1"));
  EXPECT_EQ(a1[1].ciphertext, BytesFromString("m3"));
  EXPECT_TRUE(db_.FindByAttribute("A9").value().empty());
}

TEST_F(MessageDbTest, AttributePrefixesDoNotCollide) {
  // "A1" must not match "A10" (index key framing).
  db_.Append(Make("A1", "m1")).value();
  db_.Append(Make("A10", "m2")).value();
  EXPECT_EQ(db_.FindByAttribute("A1").value().size(), 1u);
  EXPECT_EQ(db_.FindByAttribute("A10").value().size(), 1u);
}

TEST_F(MessageDbTest, FindByAttributesUnionDeduplicated) {
  db_.Append(Make("A1", "m1")).value();
  db_.Append(Make("A2", "m2")).value();
  db_.Append(Make("A3", "m3")).value();
  auto rows = db_.FindByAttributes({"A1", "A3", "A1"}).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].id, 1u);
  EXPECT_EQ(rows[1].id, 3u);
}

TEST_F(MessageDbTest, IncrementalFetchAfterId) {
  db_.Append(Make("A1", "m1")).value();
  db_.Append(Make("A1", "m2")).value();
  uint64_t id3 = db_.Append(Make("A1", "m3")).value();
  auto rows = db_.FindByAttributeAfter("A1", 2).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].id, id3);
}

TEST_F(MessageDbTest, GetMissingIsNotFound) {
  EXPECT_TRUE(db_.Get(99).status().IsNotFound());
}

TEST_F(MessageDbTest, DistinctAttributes) {
  db_.Append(Make("B", "m1")).value();
  db_.Append(Make("A", "m2")).value();
  db_.Append(Make("B", "m3")).value();
  auto attrs = db_.DistinctAttributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "A");
  EXPECT_EQ(attrs[1], "B");
}

TEST_F(MessageDbTest, TimeRangeQueries) {
  auto make_at = [&](int64_t ts) {
    StoredMessage m = Make("A1", "reading@" + std::to_string(ts));
    m.timestamp_micros = ts;
    return m;
  };
  // A month of daily readings (timestamps out of insertion order).
  for (int64_t day : {5, 1, 20, 10, 15, 25, 30}) {
    db_.Append(make_at(day * 86'400'000'000ll)).value();
  }
  // Billing period: days [10, 25).
  auto period = db_.FindByAttributeInTimeRange(
      "A1", 10 * 86'400'000'000ll, 25 * 86'400'000'000ll);
  ASSERT_TRUE(period.ok());
  ASSERT_EQ(period->size(), 3u);
  // Results come back in timestamp order.
  EXPECT_EQ(period->at(0).timestamp_micros, 10 * 86'400'000'000ll);
  EXPECT_EQ(period->at(1).timestamp_micros, 15 * 86'400'000'000ll);
  EXPECT_EQ(period->at(2).timestamp_micros, 20 * 86'400'000'000ll);
  // Bounds: inclusive lower, exclusive upper.
  auto exact = db_.FindByAttributeInTimeRange(
      "A1", 5 * 86'400'000'000ll, 5 * 86'400'000'000ll + 1);
  EXPECT_EQ(exact->size(), 1u);
  // Empty and inverted ranges.
  EXPECT_TRUE(db_.FindByAttributeInTimeRange("A1", 40, 50)->empty());
  EXPECT_TRUE(db_.FindByAttributeInTimeRange("A1", 50, 40)->empty());
  // Other attributes unaffected.
  EXPECT_TRUE(
      db_.FindByAttributeInTimeRange("A2", 0, 100ll * 86'400'000'000ll)
          ->empty());
}

// --- PolicyDb: reproduces the paper's Table 1 exactly ---

class PolicyDbTest : public ::testing::Test {
 protected:
  PolicyDbTest()
      : table_(KvStore::Open({.path = ""}).value()), db_(table_.get()) {}

  std::unique_ptr<KvStore> table_;
  PolicyDb db_;
};

TEST_F(PolicyDbTest, PaperTable1) {
  // Table 1: IDRC1/A1=1, IDRC1/A2=2, IDRC2/A1=3, IDRC3/A3=4, IDRC4/A4=5.
  EXPECT_EQ(db_.Grant("IDRC1", "A1").value(), 1u);
  EXPECT_EQ(db_.Grant("IDRC1", "A2").value(), 2u);
  EXPECT_EQ(db_.Grant("IDRC2", "A1").value(), 3u);
  EXPECT_EQ(db_.Grant("IDRC3", "A3").value(), 4u);
  EXPECT_EQ(db_.Grant("IDRC4", "A4").value(), 5u);

  auto rows = db_.AllRows().value();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], (PolicyRow{"IDRC1", "A1", 1}));
  EXPECT_EQ(rows[1], (PolicyRow{"IDRC1", "A2", 2}));
  EXPECT_EQ(rows[2], (PolicyRow{"IDRC2", "A1", 3}));
  EXPECT_EQ(rows[3], (PolicyRow{"IDRC3", "A3", 4}));
  EXPECT_EQ(rows[4], (PolicyRow{"IDRC4", "A4", 5}));

  // Same attribute, different identity => different AID (paper's point).
  EXPECT_NE(rows[0].aid, rows[2].aid);
}

TEST_F(PolicyDbTest, GrantRejectsDuplicates) {
  EXPECT_TRUE(db_.Grant("RC", "A").ok());
  auto dup = db_.Grant("RC", "A");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), util::StatusCode::kAlreadyExists);
}

TEST_F(PolicyDbTest, RowsForIdentity) {
  db_.Grant("RC1", "A1").value();
  db_.Grant("RC1", "A2").value();
  db_.Grant("RC2", "A3").value();
  auto rows = db_.RowsForIdentity("RC1").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].attribute, "A1");
  EXPECT_EQ(rows[1].attribute, "A2");
  EXPECT_TRUE(db_.RowsForIdentity("RC9").value().empty());
}

TEST_F(PolicyDbTest, IdentityPrefixesDoNotCollide) {
  db_.Grant("RC1", "A1").value();
  db_.Grant("RC10", "A2").value();
  EXPECT_EQ(db_.RowsForIdentity("RC1").value().size(), 1u);
}

TEST_F(PolicyDbTest, AidLookupAndRevocation) {
  uint64_t aid = db_.Grant("RC1", "A1").value();
  auto row = db_.RowForAid(aid).value();
  EXPECT_EQ(row.identity, "RC1");
  EXPECT_EQ(row.attribute, "A1");
  EXPECT_TRUE(db_.HasAccess("RC1", "A1"));

  EXPECT_TRUE(db_.Revoke("RC1", "A1").ok());
  EXPECT_FALSE(db_.HasAccess("RC1", "A1"));
  EXPECT_TRUE(db_.RowForAid(aid).status().IsNotFound());
  EXPECT_TRUE(db_.Revoke("RC1", "A1").IsNotFound());
}

TEST_F(PolicyDbTest, AidsNeverReusedAfterRevocation) {
  uint64_t aid1 = db_.Grant("RC1", "A1").value();
  db_.Revoke("RC1", "A1").ok();
  uint64_t aid2 = db_.Grant("RC1", "A1").value();
  EXPECT_GT(aid2, aid1);
}

// --- UserDb / DeviceKeyDb ---

TEST(UserDbTest, RegisterGetRemove) {
  auto table = KvStore::Open({.path = ""}).value();
  UserDb db(table.get());
  UserRecord rec{"C-SERVICES", BytesFromString("hash"),
                 BytesFromString("rsa-pub")};
  EXPECT_TRUE(db.Register(rec).ok());
  EXPECT_FALSE(db.Register(rec).ok());  // duplicate
  auto got = db.Get("C-SERVICES").value();
  EXPECT_EQ(got.identity, rec.identity);
  EXPECT_EQ(got.password_hash, rec.password_hash);
  EXPECT_EQ(got.rsa_public_key, rec.rsa_public_key);
  EXPECT_TRUE(db.Get("NOBODY").status().IsNotFound());
  auto ids = db.AllIdentities().value();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], "C-SERVICES");
  EXPECT_TRUE(db.Remove("C-SERVICES").ok());
  EXPECT_TRUE(db.Remove("C-SERVICES").IsNotFound());
}

TEST(DeviceKeyDbTest, RegisterGetRemove) {
  auto table = KvStore::Open({.path = ""}).value();
  DeviceKeyDb db(table.get());
  EXPECT_TRUE(db.Register("SD-1", BytesFromString("mac-key-1")).ok());
  EXPECT_FALSE(db.Register("SD-1", BytesFromString("other")).ok());
  EXPECT_EQ(db.GetKey("SD-1").value(), BytesFromString("mac-key-1"));
  EXPECT_TRUE(db.GetKey("SD-2").status().IsNotFound());
  EXPECT_EQ(db.Count(), 1u);
  EXPECT_TRUE(db.Remove("SD-1").ok());
  EXPECT_EQ(db.Count(), 0u);
}

TEST(UserDeviceDbTest, ShareOneTableWithoutCollisions) {
  auto table = KvStore::Open({.path = ""}).value();
  UserDb users(table.get());
  DeviceKeyDb devices(table.get());
  users.Register({"X", BytesFromString("h"), BytesFromString("k")}).ok();
  devices.Register("X", BytesFromString("mac")).ok();
  EXPECT_TRUE(users.Get("X").ok());
  EXPECT_TRUE(devices.GetKey("X").ok());
}

// --- Serde primitives used by the stores ---

TEST(SerdeTest, RoundTripAllTypes) {
  util::Writer w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutBytes(BytesFromString("blob"));
  w.PutString("text");
  w.PutRaw(BytesFromString("raw"));
  Bytes data = w.Take();

  util::Reader r(data);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  Bytes blob, raw;
  std::string text;
  EXPECT_TRUE(r.GetU8(&u8));
  EXPECT_TRUE(r.GetU16(&u16));
  EXPECT_TRUE(r.GetU32(&u32));
  EXPECT_TRUE(r.GetU64(&u64));
  EXPECT_TRUE(r.GetBytes(&blob));
  EXPECT_TRUE(r.GetString(&text));
  EXPECT_TRUE(r.GetRaw(3, &raw));
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(blob, BytesFromString("blob"));
  EXPECT_EQ(text, "text");
  EXPECT_EQ(raw, BytesFromString("raw"));
}

TEST(SerdeTest, TruncationFailsAndSticks) {
  util::Writer w;
  w.PutU32(7);
  Bytes data = w.Take();
  util::Reader r(data);
  uint64_t v64;
  EXPECT_FALSE(r.GetU64(&v64));
  EXPECT_FALSE(r.ok());
  uint8_t v8;
  EXPECT_FALSE(r.GetU8(&v8));  // sticky failure
  EXPECT_FALSE(r.Done());
}

TEST(SerdeTest, LengthPrefixBeyondInputFails) {
  util::Writer w;
  w.PutU32(1000);  // claims 1000 bytes follow
  util::Reader r(w.data());
  Bytes b;
  EXPECT_FALSE(r.GetBytes(&b));
}

TEST(SerdeTest, DoneDetectsTrailingGarbage) {
  util::Writer w;
  w.PutU8(1);
  w.PutU8(2);
  util::Reader r(w.data());
  uint8_t v;
  EXPECT_TRUE(r.GetU8(&v));
  EXPECT_FALSE(r.Done());
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xcbf43926 (IEEE).
  EXPECT_EQ(util::Crc32(BytesFromString("123456789")), 0xcbf43926u);
  EXPECT_EQ(util::Crc32(Bytes{}), 0u);
}

}  // namespace
}  // namespace mws::store
