#include <gtest/gtest.h>

#include "src/crypto/hash.h"
#include "src/crypto/hmac.h"
#include "src/crypto/kdf.h"
#include "src/util/hex.h"

namespace mws::crypto {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::HexDecode;
using util::HexEncode;

std::string HexHash(HashKind kind, const std::string& msg) {
  return HexEncode(Hash(kind, BytesFromString(msg)));
}

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(HexHash(HashKind::kSha1, ""),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HexHash(HashKind::kSha1, "abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HexHash(HashKind::kSha1,
                    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  auto hasher = NewHasher(HashKind::kSha1);
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher->Update(chunk);
  EXPECT_EQ(HexEncode(hasher->Finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(HexHash(HashKind::kSha256, ""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HexHash(HashKind::kSha256, "abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexHash(HashKind::kSha256,
                    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(HexHash(HashKind::kMd5, ""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(HexHash(HashKind::kMd5, "abc"),
            "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(HexHash(HashKind::kMd5, "message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(HexHash(HashKind::kMd5,
                    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                    "0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(HashTest, StreamingMatchesOneShot) {
  for (HashKind kind : {HashKind::kSha1, HashKind::kSha256, HashKind::kMd5}) {
    Bytes data = BytesFromString(
        "the quick brown fox jumps over the lazy dog, repeatedly, to cross "
        "block boundaries in interesting ways 0123456789 0123456789");
    auto hasher = NewHasher(kind);
    // Feed in awkward chunk sizes (1, 3, 63, rest).
    size_t offsets[] = {1, 3, 63};
    size_t pos = 0;
    for (size_t n : offsets) {
      hasher->Update(data.data() + pos, n);
      pos += n;
    }
    hasher->Update(data.data() + pos, data.size() - pos);
    EXPECT_EQ(hasher->Finalize(), Hash(kind, data)) << HashKindName(kind);
  }
}

TEST(HashTest, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all differ.
  for (HashKind kind : {HashKind::kSha1, HashKind::kSha256, HashKind::kMd5}) {
    std::set<std::string> digests;
    for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
      digests.insert(HexEncode(Hash(kind, Bytes(len, 'x'))));
    }
    EXPECT_EQ(digests.size(), 10u) << HashKindName(kind);
  }
}

TEST(HashTest, MetadataConsistent) {
  for (HashKind kind : {HashKind::kSha1, HashKind::kSha256, HashKind::kMd5}) {
    auto hasher = NewHasher(kind);
    EXPECT_EQ(hasher->DigestLength(), DigestLength(kind));
    EXPECT_EQ(hasher->BlockLength(), 64u);
    EXPECT_EQ(Hash(kind, {}).size(), DigestLength(kind));
  }
}

TEST(HashTest, ConvenienceWrappers) {
  Bytes msg = BytesFromString("abc");
  EXPECT_EQ(Sha1(msg), Hash(HashKind::kSha1, msg));
  EXPECT_EQ(Sha256(msg), Hash(HashKind::kSha256, msg));
  EXPECT_EQ(Md5(msg), Hash(HashKind::kMd5, msg));
}

// --- HMAC (RFC 4231 / RFC 2202 vectors) ---

TEST(HmacTest, Rfc4231Sha256Case1) {
  Bytes key(20, 0x0b);
  Bytes data = BytesFromString("Hi There");
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Sha256Case2) {
  Bytes key = BytesFromString("Jefe");
  Bytes data = BytesFromString("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Sha256LongKey) {
  // Case 6: 131-byte key (forces key hashing).
  Bytes key(131, 0xaa);
  Bytes data = BytesFromString("Test Using Larger Than Block-Size Key - "
                               "Hash Key First");
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc2202Sha1Case2) {
  Bytes key = BytesFromString("Jefe");
  Bytes data = BytesFromString("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(Hmac(HashKind::kSha1, key, data)),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc2202Md5Case2) {
  Bytes key = BytesFromString("Jefe");
  Bytes data = BytesFromString("what do ya want for nothing?");
  EXPECT_EQ(HexEncode(Hmac(HashKind::kMd5, key, data)),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(HmacTest, VerifyAcceptsAndRejects) {
  Bytes key = BytesFromString("secret");
  Bytes data = BytesFromString("message");
  Bytes mac = HmacSha256(key, data);
  EXPECT_TRUE(VerifyHmac(HashKind::kSha256, key, data, mac));
  Bytes tampered_mac = mac;
  tampered_mac[0] ^= 1;
  EXPECT_FALSE(VerifyHmac(HashKind::kSha256, key, data, tampered_mac));
  Bytes tampered_data = data;
  tampered_data[0] ^= 1;
  EXPECT_FALSE(VerifyHmac(HashKind::kSha256, key, tampered_data, mac));
  EXPECT_FALSE(VerifyHmac(HashKind::kSha256, key, data, {}));
}

TEST(HmacTest, KeySensitivity) {
  Bytes data = BytesFromString("message");
  EXPECT_NE(HmacSha256(BytesFromString("k1"), data),
            HmacSha256(BytesFromString("k2"), data));
}

// --- HKDF (RFC 5869 vectors) ---

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = HexDecode("000102030405060708090a0b0c").value();
  Bytes info = HexDecode("f0f1f2f3f4f5f6f7f8f9").value();
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(HexEncode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3EmptySaltInfo) {
  Bytes ikm(22, 0x0b);
  Bytes okm = Hkdf({}, ikm, {}, 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, OutputLengths) {
  Bytes ikm = BytesFromString("input");
  EXPECT_EQ(Hkdf({}, ikm, {}, 1).size(), 1u);
  EXPECT_EQ(Hkdf({}, ikm, {}, 32).size(), 32u);
  EXPECT_EQ(Hkdf({}, ikm, {}, 100).size(), 100u);
  // Prefix property: shorter output is a prefix of longer.
  Bytes long_out = Hkdf({}, ikm, {}, 64);
  Bytes short_out = Hkdf({}, ikm, {}, 16);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
}

TEST(HashExpandTest, DeterministicAndLengthExact) {
  Bytes input = BytesFromString("pairing-value");
  for (size_t len : {1u, 16u, 20u, 21u, 64u, 100u}) {
    Bytes a = HashExpand(HashKind::kSha1, input, len);
    Bytes b = HashExpand(HashKind::kSha1, input, len);
    EXPECT_EQ(a.size(), len);
    EXPECT_EQ(a, b);
  }
  EXPECT_NE(HashExpand(HashKind::kSha1, input, 32),
            HashExpand(HashKind::kSha256, input, 32));
  EXPECT_NE(HashExpand(HashKind::kSha1, BytesFromString("a"), 32),
            HashExpand(HashKind::kSha1, BytesFromString("b"), 32));
}

}  // namespace
}  // namespace mws::crypto
