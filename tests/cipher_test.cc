#include <gtest/gtest.h>

#include "src/crypto/block_cipher.h"
#include "src/crypto/drbg.h"
#include "src/crypto/modes.h"
#include "src/crypto/rsa.h"
#include "src/util/hex.h"
#include "src/util/random.h"

namespace mws::crypto {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;
using util::HexDecode;
using util::HexEncode;

Bytes H(const char* hex) { return HexDecode(hex).value(); }

TEST(DesTest, ClassicKnownAnswer) {
  // The widely published worked example (used in many DES tutorials).
  auto cipher = NewBlockCipher(CipherKind::kDes, H("133457799bbcdff1")).value();
  Bytes pt = H("0123456789abcdef");
  Bytes ct(8);
  cipher->EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(HexEncode(ct), "85e813540f0ab405");
  Bytes back(8);
  cipher->DecryptBlock(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

TEST(DesTest, ZeroCiphertextVector) {
  auto cipher = NewBlockCipher(CipherKind::kDes, H("0e329232ea6d0d73")).value();
  Bytes pt = H("8787878787878787");
  Bytes ct(8);
  cipher->EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(HexEncode(ct), "0000000000000000");
}

TEST(DesTest, InPlaceOperation) {
  auto cipher = NewBlockCipher(CipherKind::kDes, H("133457799bbcdff1")).value();
  Bytes buf = H("0123456789abcdef");
  cipher->EncryptBlock(buf.data(), buf.data());
  EXPECT_EQ(HexEncode(buf), "85e813540f0ab405");
  cipher->DecryptBlock(buf.data(), buf.data());
  EXPECT_EQ(HexEncode(buf), "0123456789abcdef");
}

TEST(DesTest, RoundTripRandomized) {
  DeterministicRandom rng(1);
  for (int i = 0; i < 50; ++i) {
    Bytes key = rng.Generate(8);
    Bytes pt = rng.Generate(8);
    auto cipher = NewBlockCipher(CipherKind::kDes, key).value();
    Bytes ct(8), back(8);
    cipher->EncryptBlock(pt.data(), ct.data());
    cipher->DecryptBlock(ct.data(), back.data());
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

TEST(TripleDesTest, DegeneratesToSingleDes) {
  // EDE with K1 == K2 == K3 must equal single DES.
  Bytes k = H("133457799bbcdff1");
  Bytes k3 = k;
  k3.insert(k3.end(), k.begin(), k.end());
  k3.insert(k3.end(), k.begin(), k.end());
  auto des = NewBlockCipher(CipherKind::kDes, k).value();
  auto tdes = NewBlockCipher(CipherKind::kTripleDes, k3).value();
  Bytes pt = H("0123456789abcdef");
  Bytes a(8), b(8);
  des->EncryptBlock(pt.data(), a.data());
  tdes->EncryptBlock(pt.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(TripleDesTest, RoundTripRandomized) {
  DeterministicRandom rng(2);
  for (int i = 0; i < 20; ++i) {
    Bytes key = rng.Generate(24);
    Bytes pt = rng.Generate(8);
    auto cipher = NewBlockCipher(CipherKind::kTripleDes, key).value();
    Bytes ct(8), back(8);
    cipher->EncryptBlock(pt.data(), ct.data());
    cipher->DecryptBlock(ct.data(), back.data());
    EXPECT_EQ(back, pt);
  }
}

TEST(AesTest, Fips197Vector) {
  auto cipher = NewBlockCipher(CipherKind::kAes128,
                               H("000102030405060708090a0b0c0d0e0f"))
                    .value();
  Bytes pt = H("00112233445566778899aabbccddeeff");
  Bytes ct(16);
  cipher->EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(HexEncode(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  Bytes back(16);
  cipher->DecryptBlock(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

TEST(AesTest, NistSp800_38aVector) {
  auto cipher = NewBlockCipher(CipherKind::kAes128,
                               H("2b7e151628aed2a6abf7158809cf4f3c"))
                    .value();
  Bytes pt = H("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct(16);
  cipher->EncryptBlock(pt.data(), ct.data());
  EXPECT_EQ(HexEncode(ct), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(AesTest, RoundTripRandomized) {
  DeterministicRandom rng(3);
  for (int i = 0; i < 50; ++i) {
    Bytes key = rng.Generate(16);
    Bytes pt = rng.Generate(16);
    auto cipher = NewBlockCipher(CipherKind::kAes128, key).value();
    Bytes ct(16), back(16);
    cipher->EncryptBlock(pt.data(), ct.data());
    cipher->DecryptBlock(ct.data(), back.data());
    EXPECT_EQ(back, pt);
  }
}

TEST(BlockCipherTest, KeyLengthValidation) {
  EXPECT_FALSE(NewBlockCipher(CipherKind::kDes, Bytes(7)).ok());
  EXPECT_FALSE(NewBlockCipher(CipherKind::kDes, Bytes(16)).ok());
  EXPECT_FALSE(NewBlockCipher(CipherKind::kTripleDes, Bytes(8)).ok());
  EXPECT_FALSE(NewBlockCipher(CipherKind::kAes128, Bytes(24)).ok());
  EXPECT_TRUE(NewBlockCipher(CipherKind::kDes, Bytes(8)).ok());
  EXPECT_TRUE(NewBlockCipher(CipherKind::kTripleDes, Bytes(24)).ok());
  EXPECT_TRUE(NewBlockCipher(CipherKind::kAes128, Bytes(16)).ok());
}

TEST(BlockCipherTest, Metadata) {
  EXPECT_EQ(BlockLength(CipherKind::kDes), 8u);
  EXPECT_EQ(BlockLength(CipherKind::kTripleDes), 8u);
  EXPECT_EQ(BlockLength(CipherKind::kAes128), 16u);
  EXPECT_EQ(KeyLength(CipherKind::kDes), 8u);
  EXPECT_EQ(KeyLength(CipherKind::kTripleDes), 24u);
  EXPECT_EQ(KeyLength(CipherKind::kAes128), 16u);
  EXPECT_STREQ(CipherKindName(CipherKind::kDes), "DES");
}

// --- PKCS#7 ---

TEST(Pkcs7Test, PadUnpadAllResidues) {
  for (size_t len = 0; len <= 24; ++len) {
    Bytes data(len, 0x42);
    Bytes padded = Pkcs7Pad(data, 8);
    EXPECT_EQ(padded.size() % 8, 0u);
    EXPECT_GT(padded.size(), data.size());
    auto back = Pkcs7Unpad(padded, 8);
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(back.value(), data);
  }
}

TEST(Pkcs7Test, RejectsCorruptPadding) {
  Bytes padded = Pkcs7Pad(BytesFromString("hello"), 8);
  padded.back() = 0;  // pad byte 0 invalid
  EXPECT_FALSE(Pkcs7Unpad(padded, 8).ok());
  padded.back() = 9;  // pad longer than block
  EXPECT_FALSE(Pkcs7Unpad(padded, 8).ok());
  padded.back() = 2;  // claims 2 pad bytes but the one before is 0x03
  EXPECT_FALSE(Pkcs7Unpad(padded, 8).ok());
  EXPECT_FALSE(Pkcs7Unpad({}, 8).ok());
  EXPECT_FALSE(Pkcs7Unpad(Bytes(7, 1), 8).ok());
}

// --- Modes ---

class ModeTest : public ::testing::TestWithParam<CipherKind> {};

TEST_P(ModeTest, CbcRoundTripVariousLengths) {
  DeterministicRandom rng(4);
  Bytes key = rng.Generate(KeyLength(GetParam()));
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 100u, 1000u}) {
    Bytes pt = rng.Generate(len);
    auto ct = CbcEncrypt(GetParam(), key, pt, rng);
    ASSERT_TRUE(ct.ok());
    auto back = CbcDecrypt(GetParam(), key, ct.value());
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(back.value(), pt);
  }
}

TEST_P(ModeTest, CbcFreshIvPerEncryption) {
  DeterministicRandom rng(5);
  Bytes key = rng.Generate(KeyLength(GetParam()));
  Bytes pt = BytesFromString("same message");
  auto a = CbcEncrypt(GetParam(), key, pt, rng);
  auto b = CbcEncrypt(GetParam(), key, pt, rng);
  EXPECT_NE(a.value(), b.value());
}

TEST_P(ModeTest, CbcRejectsTamperedPaddingOrLength) {
  DeterministicRandom rng(6);
  Bytes key = rng.Generate(KeyLength(GetParam()));
  auto ct = CbcEncrypt(GetParam(), key, BytesFromString("attack at dawn"),
                       rng);
  ASSERT_TRUE(ct.ok());
  Bytes truncated(ct.value().begin(), ct.value().end() - 1);
  EXPECT_FALSE(CbcDecrypt(GetParam(), key, truncated).ok());
  EXPECT_FALSE(CbcDecrypt(GetParam(), key, {}).ok());
}

TEST_P(ModeTest, CbcWrongKeyFailsOrGarbles) {
  DeterministicRandom rng(7);
  Bytes key = rng.Generate(KeyLength(GetParam()));
  Bytes key2 = rng.Generate(KeyLength(GetParam()));
  Bytes pt = BytesFromString("confidential meter reading 12345");
  auto ct = CbcEncrypt(GetParam(), key, pt, rng);
  auto back = CbcDecrypt(GetParam(), key2, ct.value());
  if (back.ok()) {
    EXPECT_NE(back.value(), pt);
  }
}

TEST_P(ModeTest, CtrRoundTripAndLengthPreserving) {
  DeterministicRandom rng(8);
  Bytes key = rng.Generate(KeyLength(GetParam()));
  for (size_t len : {0u, 1u, 8u, 13u, 64u, 1000u}) {
    Bytes pt = rng.Generate(len);
    auto ct = CtrEncrypt(GetParam(), key, pt, rng);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct.value().size(), len + BlockLength(GetParam()));
    auto back = CtrDecrypt(GetParam(), key, ct.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), pt);
  }
  EXPECT_FALSE(CtrDecrypt(GetParam(), key, Bytes(3)).ok());
}

INSTANTIATE_TEST_SUITE_P(AllCiphers, ModeTest,
                         ::testing::Values(CipherKind::kDes,
                                           CipherKind::kTripleDes,
                                           CipherKind::kAes128),
                         [](const ::testing::TestParamInfo<CipherKind>& info) {
                           switch (info.param) {
                             case CipherKind::kDes:
                               return "Des";
                             case CipherKind::kTripleDes:
                               return "TripleDes";
                             case CipherKind::kAes128:
                               return "Aes128";
                           }
                           return "Unknown";
                         });

TEST(CbcTest, KnownNistAesVectorFirstBlock) {
  // SP 800-38A F.2.1 (CBC-AES128) block 1: we can't inject the IV through
  // the public API, so check the core transform via a hand-rolled step:
  // C1 = E(K, P1 xor IV).
  Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv = H("000102030405060708090a0b0c0d0e0f");
  Bytes p1 = H("6bc1bee22e409f96e93d7e117393172a");
  auto cipher = NewBlockCipher(CipherKind::kAes128, key).value();
  Bytes x(16);
  for (int i = 0; i < 16; ++i) x[i] = p1[i] ^ iv[i];
  Bytes c1(16);
  cipher->EncryptBlock(x.data(), c1.data());
  EXPECT_EQ(HexEncode(c1), "7649abac8119b246cee98e9b12e9197d");
}

// --- DRBG ---

TEST(DrbgTest, DeterministicFromSeed) {
  HmacDrbg a(BytesFromString("seed"));
  HmacDrbg b(BytesFromString("seed"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
  HmacDrbg c(BytesFromString("other-seed"));
  EXPECT_NE(a.Generate(64), c.Generate(64));
}

TEST(DrbgTest, SequentialOutputsDiffer) {
  HmacDrbg drbg(BytesFromString("seed"));
  EXPECT_NE(drbg.Generate(32), drbg.Generate(32));
}

TEST(DrbgTest, ReseedChangesStream) {
  HmacDrbg a(BytesFromString("seed"));
  HmacDrbg b(BytesFromString("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(BytesFromString("fresh entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, UniformU64RespectsBound) {
  HmacDrbg drbg(BytesFromString("seed"));
  for (int i = 0; i < 200; ++i) EXPECT_LT(drbg.UniformU64(10), 10u);
}

// --- RSA ---

TEST(RsaTest, KeyGenAndOaepRoundTrip) {
  DeterministicRandom rng(9);
  auto kp = RsaGenerateKeyPair(768, rng);
  ASSERT_TRUE(kp.ok());
  Bytes msg = BytesFromString("session-key-and-ticket");
  auto ct = RsaOaepEncrypt(kp->public_key, msg, rng);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), kp->public_key.ByteLength());
  auto back = RsaOaepDecrypt(kp->private_key, ct.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), msg);
}

TEST(RsaTest, EncryptionIsRandomized) {
  DeterministicRandom rng(10);
  auto kp = RsaGenerateKeyPair(768, rng);
  ASSERT_TRUE(kp.ok());
  Bytes msg = BytesFromString("m");
  auto a = RsaOaepEncrypt(kp->public_key, msg, rng);
  auto b = RsaOaepEncrypt(kp->public_key, msg, rng);
  EXPECT_NE(a.value(), b.value());
}

TEST(RsaTest, RejectsOversizeMessage) {
  DeterministicRandom rng(11);
  auto kp = RsaGenerateKeyPair(768, rng);
  ASSERT_TRUE(kp.ok());
  size_t capacity = kp->public_key.ByteLength() - 66;
  EXPECT_TRUE(
      RsaOaepEncrypt(kp->public_key, Bytes(capacity, 1), rng).ok());
  EXPECT_FALSE(
      RsaOaepEncrypt(kp->public_key, Bytes(capacity + 1, 1), rng).ok());
}

TEST(RsaTest, TamperedCiphertextRejected) {
  DeterministicRandom rng(12);
  auto kp = RsaGenerateKeyPair(768, rng);
  ASSERT_TRUE(kp.ok());
  auto ct = RsaOaepEncrypt(kp->public_key, BytesFromString("msg"), rng);
  ASSERT_TRUE(ct.ok());
  Bytes tampered = ct.value();
  tampered[tampered.size() / 2] ^= 0x40;
  EXPECT_FALSE(RsaOaepDecrypt(kp->private_key, tampered).ok());
  EXPECT_FALSE(RsaOaepDecrypt(kp->private_key, Bytes(5)).ok());
}

TEST(RsaTest, WrongKeyRejected) {
  DeterministicRandom rng(13);
  auto kp1 = RsaGenerateKeyPair(768, rng);
  auto kp2 = RsaGenerateKeyPair(768, rng);
  ASSERT_TRUE(kp1.ok() && kp2.ok());
  auto ct = RsaOaepEncrypt(kp1->public_key, BytesFromString("msg"), rng);
  EXPECT_FALSE(RsaOaepDecrypt(kp2->private_key, ct.value()).ok());
}

TEST(RsaTest, PublicKeySerializationRoundTrip) {
  DeterministicRandom rng(14);
  auto kp = RsaGenerateKeyPair(768, rng);
  ASSERT_TRUE(kp.ok());
  Bytes ser = SerializeRsaPublicKey(kp->public_key);
  auto parsed = ParseRsaPublicKey(ser);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->n, kp->public_key.n);
  EXPECT_EQ(parsed->e, kp->public_key.e);
  // Malformed inputs.
  EXPECT_FALSE(ParseRsaPublicKey({}).ok());
  EXPECT_FALSE(ParseRsaPublicKey(Bytes(3, 0xff)).ok());
  Bytes truncated(ser.begin(), ser.end() - 2);
  EXPECT_FALSE(ParseRsaPublicKey(truncated).ok());
}

TEST(RsaTest, RejectsTooSmallModulus) {
  DeterministicRandom rng(15);
  EXPECT_FALSE(RsaGenerateKeyPair(256, rng).ok());
}

}  // namespace
}  // namespace mws::crypto
