#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/util/serde.h"
#include "src/wire/auth.h"
#include "src/wire/messages.h"
#include "src/wire/transport.h"

namespace mws::wire {
namespace {

using util::Bytes;
using util::BytesFromString;
using util::DeterministicRandom;

template <typename T>
void ExpectRoundTrip(const T& message) {
  Bytes encoded = message.Encode();
  auto decoded = T::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->Encode(), encoded);
}

DepositRequest SampleDeposit() {
  DepositRequest m;
  m.u = BytesFromString("point-bytes");
  m.ciphertext = BytesFromString("ciphertext");
  m.attribute = "ELECTRIC-APT-SV-CA";
  m.nonce = Bytes(16, 0xaa);
  m.device_id = "SD-42";
  m.timestamp_micros = 1234567890;
  m.mac = Bytes(32, 0xbb);
  return m;
}

TEST(WireMessagesTest, DepositRequestRoundTrip) {
  DepositRequest m = SampleDeposit();
  auto decoded = DepositRequest::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->u, m.u);
  EXPECT_EQ(decoded->ciphertext, m.ciphertext);
  EXPECT_EQ(decoded->attribute, m.attribute);
  EXPECT_EQ(decoded->nonce, m.nonce);
  EXPECT_EQ(decoded->device_id, m.device_id);
  EXPECT_EQ(decoded->timestamp_micros, m.timestamp_micros);
  EXPECT_EQ(decoded->mac, m.mac);
}

TEST(WireMessagesTest, DepositBatchResponseCarriesDedupFlag) {
  DepositBatchResponse m;
  m.items.push_back({true, 41, false, {}});
  m.items.push_back({true, 17, true, {}});  // a dedup-absorbed replay
  m.items.push_back({false, 0, false, BytesFromString("err")});
  auto decoded = DepositBatchResponse::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->items.size(), 3u);
  EXPECT_FALSE(decoded->items[0].deduplicated);
  EXPECT_TRUE(decoded->items[1].deduplicated);
  EXPECT_EQ(decoded->items[1].message_id, 17u);
}

TEST(WireMessagesTest, DepositBatchResponseDecodesV1Payloads) {
  // A v1 peer sends no per-item dedup flag; decode must accept the
  // payload and default every ack to "fresh".
  util::Writer w;
  w.PutU8(1);   // version 1
  w.PutU32(1);  // one item
  w.PutU8(1);   // ok
  w.PutU64(7);  // message id
  w.PutBytes({});  // error
  auto decoded = DepositBatchResponse::Decode(w.Take());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->items.size(), 1u);
  EXPECT_TRUE(decoded->items[0].ok);
  EXPECT_EQ(decoded->items[0].message_id, 7u);
  EXPECT_FALSE(decoded->items[0].deduplicated);

  // Unknown future versions are rejected, not misparsed.
  util::Writer bad;
  bad.PutU8(9);
  bad.PutU32(0);
  EXPECT_FALSE(DepositBatchResponse::Decode(bad.Take()).ok());
}

TEST(WireMessagesTest, AuthenticatedBytesExcludeMac) {
  DepositRequest m = SampleDeposit();
  Bytes auth1 = m.AuthenticatedBytes();
  m.mac = Bytes(32, 0x00);
  EXPECT_EQ(m.AuthenticatedBytes(), auth1);  // MAC not covered
  m.ciphertext[0] ^= 1;
  EXPECT_NE(m.AuthenticatedBytes(), auth1);  // payload covered
}

TEST(WireMessagesTest, AllMessageTypesRoundTrip) {
  ExpectRoundTrip(SampleDeposit());
  ExpectRoundTrip(DepositResponse{42});

  RcAuthRequest auth;
  auth.rc_identity = "C-SERVICES";
  auth.rsa_public_key = BytesFromString("rsa-pub");
  auth.auth_ciphertext = BytesFromString("sealed");
  ExpectRoundTrip(auth);

  RcAuthPlain plain;
  plain.rc_identity = "C-SERVICES";
  plain.timestamp_micros = 99;
  plain.client_nonce = Bytes(16, 1);
  ExpectRoundTrip(plain);

  ExpectRoundTrip(RcAuthResponse{BytesFromString("session")});
  ExpectRoundTrip(RetrieveRequest{BytesFromString("session"), 7});

  RetrievedMessage rm;
  rm.message_id = 3;
  rm.u = BytesFromString("u");
  rm.ciphertext = BytesFromString("c");
  rm.aid = 12;
  rm.nonce = Bytes(16, 2);
  ExpectRoundTrip(rm);

  RetrieveResponse rr;
  rr.messages = {rm, rm};
  rr.token = BytesFromString("token");
  ExpectRoundTrip(rr);

  TicketPlain ticket;
  ticket.rc_identity = "RC";
  ticket.session_key = Bytes(32, 3);
  ticket.aid_attributes = {{1, "A1"}, {2, "A2"}};
  ticket.expiry_micros = 1000;
  ExpectRoundTrip(ticket);

  ExpectRoundTrip(TokenPlain{Bytes(32, 4), BytesFromString("ticket")});
  ExpectRoundTrip(AuthenticatorPlain{"RC", 55});
  ExpectRoundTrip(PkgAuthRequest{"RC", BytesFromString("t"),
                                 BytesFromString("a")});
  ExpectRoundTrip(PkgAuthResponse{BytesFromString("ps")});
  ExpectRoundTrip(KeyRequest{BytesFromString("ps"), 9, Bytes(16, 5)});
  ExpectRoundTrip(KeyResponse{BytesFromString("sealed-key")});
}

TEST(WireMessagesTest, EmptyRetrieveResponse) {
  RetrieveResponse rr;
  rr.token = {};
  auto decoded = RetrieveResponse::Decode(rr.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->messages.empty());
}

TEST(WireMessagesTest, DecodeRejectsTruncationEverywhere) {
  // Property: every strict prefix of a valid encoding fails to decode.
  DepositRequest m = SampleDeposit();
  Bytes encoded = m.Encode();
  for (size_t len = 0; len < encoded.size(); ++len) {
    Bytes prefix(encoded.begin(), encoded.begin() + len);
    EXPECT_FALSE(DepositRequest::Decode(prefix).ok()) << "len=" << len;
  }
}

TEST(WireMessagesTest, DecodeRejectsTrailingGarbage) {
  Bytes encoded = SampleDeposit().Encode();
  encoded.push_back(0x00);
  EXPECT_FALSE(DepositRequest::Decode(encoded).ok());
}

TEST(WireMessagesTest, DecodeRandomGarbageNeverCrashes) {
  DeterministicRandom rng(13);
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.Generate(rng.UniformU64(200));
    (void)DepositRequest::Decode(junk);
    (void)RetrieveResponse::Decode(junk);
    (void)TicketPlain::Decode(junk);
    (void)PkgAuthRequest::Decode(junk);
    (void)KeyRequest::Decode(junk);
  }
  SUCCEED();
}

TEST(WireMessagesTest, TicketWithManyAttributes) {
  TicketPlain ticket;
  ticket.rc_identity = "RC";
  ticket.session_key = Bytes(32, 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    ticket.aid_attributes.emplace_back(i, "ATTR-" + std::to_string(i));
  }
  auto decoded = TicketPlain::Decode(ticket.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->aid_attributes.size(), 1000u);
  EXPECT_EQ(decoded->aid_attributes[999].second, "ATTR-999");
}

// --- Auth helpers ---

TEST(AuthTest, HashPasswordDeterministic) {
  EXPECT_EQ(HashPassword("secret"), HashPassword("secret"));
  EXPECT_NE(HashPassword("secret"), HashPassword("Secret"));
  EXPECT_EQ(HashPassword("x").size(), 32u);
}

TEST(AuthTest, DeriveAuthKeyMatchesCipher) {
  Bytes hash = HashPassword("pw");
  EXPECT_EQ(DeriveAuthKey(hash, crypto::CipherKind::kDes).size(), 8u);
  EXPECT_EQ(DeriveAuthKey(hash, crypto::CipherKind::kAes128).size(), 16u);
  EXPECT_NE(DeriveAuthKey(hash, crypto::CipherKind::kDes),
            DeriveAuthKey(HashPassword("pw2"), crypto::CipherKind::kDes));
}

TEST(AuthTest, ChannelKeysDomainSeparated) {
  Bytes secret(32, 7);
  EXPECT_NE(DeriveChannelKey(secret, crypto::CipherKind::kDes, "purpose-a"),
            DeriveChannelKey(secret, crypto::CipherKind::kDes, "purpose-b"));
}

// --- Transport ---

TEST(TransportTest, DispatchAndStats) {
  InProcessTransport transport;
  transport.Register("echo",
                     [](const Bytes& request) -> util::Result<Bytes> {
                       return request;
                     });
  auto response = transport.Call("echo", BytesFromString("hello"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value(), BytesFromString("hello"));
  EXPECT_EQ(transport.stats().calls, 1u);
  EXPECT_EQ(transport.stats().request_bytes, 5u);
  EXPECT_EQ(transport.stats().response_bytes, 5u);
}

TEST(TransportTest, UnknownEndpoint) {
  InProcessTransport transport;
  EXPECT_TRUE(transport.Call("nope", {}).status().IsNotFound());
}

TEST(TransportTest, HandlerErrorsPropagate) {
  InProcessTransport transport;
  transport.Register("fail", [](const Bytes&) -> util::Result<Bytes> {
    return util::Status::PermissionDenied("no");
  });
  auto result = transport.Call("fail", {});
  EXPECT_EQ(result.status().code(), util::StatusCode::kPermissionDenied);
}

TEST(TransportTest, NetworkModelAccounting) {
  InProcessTransport transport(wire::NetworkModel{1000, 1'000'000});
  transport.Register("svc", [](const Bytes&) -> util::Result<Bytes> {
    return Bytes(500, 0);
  });
  ASSERT_TRUE(transport.Call("svc", Bytes(1000, 0)).ok());
  // Request: 1000us latency + 1000B/1MBps = 1000us. Response: 1000 + 500.
  EXPECT_EQ(transport.stats().simulated_network_micros, 1000 + 1000 + 1000 + 500);
}

TEST(TransportTest, ModelPresetsOrdered) {
  // Meter uplink is far slower than LAN which is slower than loopback.
  EXPECT_GT(NetworkModel::MeterUplink().latency_micros,
            NetworkModel::Wan().latency_micros);
  EXPECT_GT(NetworkModel::Wan().latency_micros,
            NetworkModel::Lan().latency_micros);
  EXPECT_EQ(NetworkModel::Loopback().latency_micros, 0);
}

TEST(TransportTest, ResetStats) {
  InProcessTransport transport;
  transport.Register("e", [](const Bytes& b) -> util::Result<Bytes> {
    return b;
  });
  transport.Call("e", Bytes(10, 0)).ok();
  transport.ResetStats();
  EXPECT_EQ(transport.stats().calls, 0u);
  EXPECT_EQ(transport.stats().request_bytes, 0u);
}

}  // namespace
}  // namespace mws::wire
