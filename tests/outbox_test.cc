// Durable-outbox tests: the on-disk segment format survives truncation
// at every byte offset and arbitrary corruption (crash-consistency, the
// WAL discipline), rotation bounds segment files, disk_full rejects
// readings without poisoning later ones, and the drain path delivers
// every accepted reading to the warehouse exactly once — replays after
// a crash-before-ack restart are absorbed by (ID_SD, nonce) dedup and
// kept out of the device's send accounting.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/client/outbox.h"
#include "src/sim/fleet.h"
#include "src/sim/scenario.h"
#include "src/util/serde.h"

namespace mws::client {
namespace {

namespace fs = std::filesystem;
using util::Bytes;
using util::BytesFromString;

OutboxRecord Record(size_t i) {
  OutboxRecord record;
  record.attribute = "ELECTRIC-BAYTOWER-SV-CA";
  record.nonce = BytesFromString("nonce-" + std::to_string(i));
  record.u = BytesFromString("point-rP-" + std::to_string(i));
  record.ciphertext = BytesFromString("ciphertext-" + std::to_string(i) +
                                      "-sealed-reading-payload");
  return record;
}

Bytes Frame(const Bytes& body) {
  util::Writer w;
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutRaw(body);
  w.PutU32(util::Crc32(w.data()));
  return w.Take();
}

class OutboxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("outbox_" + std::to_string(::getpid()) + "_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(reinterpret_cast<uintptr_t>(this))))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  Outbox::Options Opts() {
    Outbox::Options options;
    options.dir = dir_;
    options.clock = &clock_;
    return options;
  }

  std::vector<std::string> SegmentFiles() const {
    std::vector<std::string> files;
    if (!fs::exists(dir_)) return files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  Bytes ReadFile(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return Bytes((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, const Bytes& content) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
  }

  std::string dir_;
  util::SimulatedClock clock_{1'000'000};
};

TEST_F(OutboxTest, EnqueuePeekAcknowledgeRoundTrip) {
  auto outbox = Outbox::Open(Opts()).value();
  for (size_t i = 0; i < 5; ++i) {
    clock_.AdvanceMicros(1000);
    ASSERT_TRUE(outbox->Enqueue(Record(i)).ok());
  }
  EXPECT_EQ(outbox->depth(), 5u);

  std::vector<OutboxRecord> head = outbox->Peek(3);
  ASSERT_EQ(head.size(), 3u);
  for (size_t i = 0; i < head.size(); ++i) {
    EXPECT_EQ(head[i].nonce, Record(i).nonce);
    EXPECT_GT(head[i].enqueue_micros, 0);
  }
  ASSERT_TRUE(outbox->Acknowledge(3).ok());
  EXPECT_EQ(outbox->depth(), 2u);
  EXPECT_EQ(outbox->Peek(10)[0].nonce, Record(3).nonce);

  // Over-acknowledging is an error, not silent corruption.
  EXPECT_FALSE(outbox->Acknowledge(3).ok());
  ASSERT_TRUE(outbox->Acknowledge(2).ok());
  EXPECT_EQ(outbox->depth(), 0u);
  // A fully drained outbox leaves no files: a restart replays nothing.
  EXPECT_TRUE(SegmentFiles().empty());
}

TEST_F(OutboxTest, ReopenRecoversPendingRecords) {
  {
    auto outbox = Outbox::Open(Opts()).value();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(outbox->Enqueue(Record(i)).ok());
    }
    ASSERT_TRUE(outbox->Acknowledge(1).ok());
  }
  auto outbox = Outbox::Open(Opts()).value();
  // At-least-once: the partially drained segment replays all 4 records
  // (the warehouse dedups the acked head); nothing committed is lost.
  EXPECT_GE(outbox->depth(), 3u);
  EXPECT_EQ(outbox->recovery_stats().torn_tails, 0u);
  std::vector<OutboxRecord> all = outbox->Peek(10);
  EXPECT_EQ(all.back().nonce, Record(3).nonce);
}

TEST_F(OutboxTest, TruncationAtEveryByteOffsetKeepsCommittedPrefix) {
  constexpr size_t kRecords = 4;
  std::vector<size_t> boundaries;
  std::vector<Bytes> originals;  // stamped encodings, in queue order
  {
    auto outbox = Outbox::Open(Opts()).value();
    for (size_t i = 0; i < kRecords; ++i) {
      clock_.AdvanceMicros(1000);
      ASSERT_TRUE(outbox->Enqueue(Record(i)).ok());
      boundaries.push_back(
          static_cast<size_t>(fs::file_size(SegmentFiles()[0])));
    }
    for (const OutboxRecord& record : outbox->Peek(kRecords)) {
      originals.push_back(record.Encode());
    }
  }
  ASSERT_EQ(SegmentFiles().size(), 1u);
  const std::string path = SegmentFiles()[0];
  const Bytes full = ReadFile(path);
  ASSERT_EQ(full.size(), boundaries.back());

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, Bytes(full.begin(), full.begin() + cut));

    size_t committed = 0;
    while (committed < kRecords && boundaries[committed] <= cut) ++committed;

    auto outbox = Outbox::Open(Opts()).value();
    EXPECT_EQ(outbox->depth(), committed) << "cut=" << cut;
    std::vector<OutboxRecord> recovered = outbox->Peek(kRecords);
    for (size_t i = 0; i < recovered.size(); ++i) {
      EXPECT_EQ(recovered[i].Encode(), originals[i]) << "cut=" << cut;
    }
    // The committed prefix includes the 4-byte magic header once it is
    // wholly present (a partial header quarantines the file whole);
    // anything past the last whole record is torn.
    size_t valid_end =
        committed == 0 ? (cut >= 4 ? 4 : 0) : boundaries[committed - 1];
    EXPECT_EQ(outbox->recovery_stats().torn_tails, cut != valid_end ? 1u : 0u)
        << "cut=" << cut;
    EXPECT_EQ(outbox->recovery_stats().bytes_truncated, cut - valid_end)
        << "cut=" << cut;

    // The recovered outbox accepts new enqueues, and a clean reopen
    // sees the committed prefix plus the new record.
    ASSERT_TRUE(outbox->Enqueue(Record(90)).ok()) << "cut=" << cut;
    outbox.reset();
    auto reopened = Outbox::Open(Opts()).value();
    EXPECT_EQ(reopened->depth(), committed + 1) << "cut=" << cut;
    EXPECT_EQ(reopened->recovery_stats().torn_tails, 0u) << "cut=" << cut;
    EXPECT_EQ(reopened->Peek(10).back().nonce, Record(90).nonce)
        << "cut=" << cut;
    reopened.reset();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    WriteFile(path, full);  // pristine log for the next cut
  }
}

TEST_F(OutboxTest, SeededBitflipFuzzNeverCrashesOrInventsRecords) {
  constexpr size_t kRecords = 4;
  {
    auto outbox = Outbox::Open(Opts()).value();
    for (size_t i = 0; i < kRecords; ++i) {
      clock_.AdvanceMicros(1000);
      ASSERT_TRUE(outbox->Enqueue(Record(i)).ok());
    }
  }
  const std::string path = SegmentFiles()[0];
  const Bytes full = ReadFile(path);
  std::vector<Bytes> originals;
  {
    auto outbox = Outbox::Open(Opts()).value();
    for (const OutboxRecord& record : outbox->Peek(kRecords)) {
      originals.push_back(record.Encode());
    }
  }

  util::DeterministicRandom rng(0xf1a9);
  for (size_t trial = 0; trial < 300; ++trial) {
    Bytes mutated = full;
    if (trial % 3 != 2) {
      // Single bitflip anywhere in the file.
      size_t at = rng.NextU64() % mutated.size();
      mutated[at] ^= static_cast<uint8_t>(1u << (rng.NextU64() % 8));
    } else {
      // Splice 1..8 random bytes over a random window.
      size_t at = rng.NextU64() % mutated.size();
      size_t len = 1 + rng.NextU64() % 8;
      for (size_t i = 0; i < len && at + i < mutated.size(); ++i) {
        mutated[at + i] = static_cast<uint8_t>(rng.NextU64());
      }
    }
    WriteFile(path, mutated);

    auto opened = Outbox::Open(Opts());
    ASSERT_TRUE(opened.ok()) << "trial=" << trial;
    std::vector<OutboxRecord> recovered = opened.value()->Peek(kRecords + 1);
    // Damage truncates: the survivors are a strict prefix of what was
    // written — never a corrupted record decoded as OK, never an
    // invented one.
    ASSERT_LE(recovered.size(), kRecords) << "trial=" << trial;
    for (size_t i = 0; i < recovered.size(); ++i) {
      EXPECT_EQ(recovered[i].Encode(), originals[i]) << "trial=" << trial;
    }
    opened.value().reset();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    WriteFile(path, full);
  }
}

TEST_F(OutboxTest, LengthBombIsRejectedWithoutAllocation) {
  {
    auto outbox = Outbox::Open(Opts()).value();
    ASSERT_TRUE(outbox->Enqueue(Record(0)).ok());
    ASSERT_TRUE(outbox->Enqueue(Record(1)).ok());
  }
  const std::string path = SegmentFiles()[0];
  Bytes full = ReadFile(path);

  // A frame whose length field claims ~2 GiB (over the 4 MiB record
  // cap), with enough trailing bytes to look like a real tail.
  Bytes bombed = full;
  const uint8_t bomb[] = {0x7f, 0xff, 0xff, 0xff, 0x01, 0x02, 0x03, 0x04};
  bombed.insert(bombed.end(), bomb, bomb + sizeof(bomb));
  WriteFile(path, bombed);
  {
    auto outbox = Outbox::Open(Opts()).value();
    EXPECT_EQ(outbox->depth(), 2u);
    EXPECT_EQ(outbox->recovery_stats().torn_tails, 1u);
    EXPECT_EQ(outbox->recovery_stats().bytes_truncated, sizeof(bomb));
  }

  // A CRC-valid frame whose body is not an OutboxRecord must also stop
  // recovery — framing alone is not trust.
  Bytes garbage_framed = full;
  Bytes garbage_body = BytesFromString("not-an-outbox-record");
  Bytes frame = Frame(garbage_body);
  garbage_framed.insert(garbage_framed.end(), frame.begin(), frame.end());
  WriteFile(path, garbage_framed);
  {
    auto outbox = Outbox::Open(Opts()).value();
    EXPECT_EQ(outbox->depth(), 2u);
    EXPECT_EQ(outbox->recovery_stats().torn_tails, 1u);
  }

  // A file that lost its magic header is quarantined whole.
  Bytes headerless(full.begin() + 2, full.end());
  WriteFile(path, headerless);
  {
    auto outbox = Outbox::Open(Opts()).value();
    EXPECT_EQ(outbox->depth(), 0u);
    EXPECT_EQ(outbox->recovery_stats().torn_tails, 1u);
  }
}

TEST_F(OutboxTest, RotationBoundsSegmentsAndPreservesOrder) {
  Outbox::Options options = Opts();
  options.max_segment_bytes = 256;  // a few records per segment
  auto outbox = Outbox::Open(options).value();
  for (size_t i = 0; i < 12; ++i) {
    clock_.AdvanceMicros(1000);
    ASSERT_TRUE(outbox->Enqueue(Record(i)).ok());
  }
  EXPECT_GT(SegmentFiles().size(), 2u);

  std::vector<OutboxRecord> all = outbox->Peek(12);
  ASSERT_EQ(all.size(), 12u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].nonce, Record(i).nonce);
  }
  // Acking across a segment boundary deletes the consumed files.
  size_t files_before = SegmentFiles().size();
  ASSERT_TRUE(outbox->Acknowledge(7).ok());
  EXPECT_LT(SegmentFiles().size(), files_before);
  EXPECT_EQ(outbox->Peek(1)[0].nonce, Record(7).nonce);

  // Age rotation: the active segment is sealed once its first record
  // gets old enough, even if small.
  Outbox::Options aged = Opts();
  aged.max_segment_age_micros = 10'000;
  fs::remove_all(dir_);
  auto aged_box = Outbox::Open(aged).value();
  ASSERT_TRUE(aged_box->Enqueue(Record(50)).ok());
  clock_.AdvanceMicros(20'000);
  ASSERT_TRUE(aged_box->Enqueue(Record(51)).ok());
  EXPECT_EQ(SegmentFiles().size(), 2u);
}

TEST_F(OutboxTest, DiskFullRejectsRecordWithoutPoisoningLaterOnes) {
  util::FaultInjector injector(7);
  // The magic header is append #1, the first record's frame is #2; fail
  // the second record's frame (#3).
  injector.AddRule({.kind = util::FaultKind::kDiskFull,
                    .pattern = "file.append/",
                    .nth = 3,
                    .code = util::StatusCode::kResourceExhausted,
                    .message = "device storage exhausted"});
  Outbox::Options options = Opts();
  options.injector = &injector;
  auto outbox = Outbox::Open(options).value();

  ASSERT_TRUE(outbox->Enqueue(Record(0)).ok());
  util::Status full = outbox->Enqueue(Record(1));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(outbox->depth(), 1u);
  ASSERT_TRUE(outbox->Enqueue(Record(2)).ok());
  EXPECT_EQ(outbox->depth(), 2u);

  outbox.reset();
  auto reopened = Outbox::Open(Opts()).value();
  EXPECT_EQ(reopened->depth(), 2u);
  std::vector<OutboxRecord> records = reopened->Peek(10);
  EXPECT_EQ(records[0].nonce, Record(0).nonce);
  EXPECT_EQ(records[1].nonce, Record(2).nonce);
}

TEST_F(OutboxTest, TornWriteSealsTheSegmentSoLaterRecordsSurvive) {
  util::FaultInjector injector(7);
  injector.AddRule({.kind = util::FaultKind::kTornWrite,
                    .pattern = "file.append/",
                    .nth = 3,
                    .message = "power loss mid-append"});
  Outbox::Options options = Opts();
  options.injector = &injector;
  auto outbox = Outbox::Open(options).value();

  ASSERT_TRUE(outbox->Enqueue(Record(0)).ok());
  ASSERT_FALSE(outbox->Enqueue(Record(1)).ok());  // half a frame on disk
  // The record accepted after the tear must not land behind the torn
  // bytes (recovery would drop it): the outbox rotates to a new file.
  ASSERT_TRUE(outbox->Enqueue(Record(2)).ok());
  EXPECT_EQ(SegmentFiles().size(), 2u);

  outbox.reset();
  auto reopened = Outbox::Open(Opts()).value();
  EXPECT_EQ(reopened->depth(), 2u);
  EXPECT_EQ(reopened->recovery_stats().torn_tails, 1u);
  std::vector<OutboxRecord> records = reopened->Peek(10);
  EXPECT_EQ(records[0].nonce, Record(0).nonce);
  EXPECT_EQ(records[1].nonce, Record(2).nonce);
}

TEST_F(OutboxTest, MetricsTrackDepthAndDrainLatency) {
  obs::Registry registry;
  Outbox::Options options = Opts();
  options.metrics = &registry;
  auto outbox = Outbox::Open(options).value();
  ASSERT_TRUE(outbox->Enqueue(Record(0)).ok());
  ASSERT_TRUE(outbox->Enqueue(Record(1)).ok());

  obs::RegistrySnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.gauge("outbox.depth"), nullptr);
  EXPECT_EQ(*snap.gauge("outbox.depth"), 2);
  EXPECT_EQ(*snap.counter("outbox.enqueued"), 2u);

  clock_.AdvanceMicros(5'000);
  ASSERT_TRUE(outbox->Acknowledge(1).ok());
  snap = registry.Snapshot();
  EXPECT_EQ(*snap.gauge("outbox.depth"), 1);
  EXPECT_EQ(*snap.counter("outbox.drained"), 1u);
  const obs::HistogramSnapshot* latency =
      snap.histogram("outbox.drain_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  EXPECT_GE(latency->max, 5'000u);

  // Destruction releases the remaining depth; a reopen re-adds what it
  // recovers — the gauge stays an aggregate over live outboxes.
  outbox.reset();
  EXPECT_EQ(*registry.Snapshot().gauge("outbox.depth"), 0);
  outbox = Outbox::Open(options).value();
  EXPECT_GE(*registry.Snapshot().gauge("outbox.depth"), 1);
}

// --- Drain integration: the outbox feeding a real warehouse ---

class OutboxDrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("outbox_drain_" + std::to_string(::getpid()) + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_F(OutboxDrainTest, CrashBeforeAckReplaysAndDedupAbsorbs) {
  sim::UtilityScenario::Options options;
  options.devices_per_class = 1;
  auto scenario = sim::UtilityScenario::Create(options).value();
  client::SmartDevice& device = scenario->devices()[0];
  const std::string attr = sim::UtilityScenario::kElectricAttr;
  const std::string dir = root_ + "/outbox";
  const std::string snapshot = root_ + "/snapshot";

  Outbox::Options obx;
  obx.dir = dir;
  obx.clock = &scenario->clock();
  obx.metrics = scenario->metrics();
  auto outbox = Outbox::Open(obx).value();
  device.AttachOutbox(outbox.get());

  for (size_t i = 0; i < 3; ++i) {
    scenario->clock().AdvanceMicros(1'000'000);
    auto nonce =
        device.EnqueueReading(attr, BytesFromString("reading-" +
                                                    std::to_string(i)));
    ASSERT_TRUE(nonce.ok());
  }
  EXPECT_EQ(outbox->depth(), 3u);
  fs::copy(dir, snapshot, fs::copy_options::recursive);

  // First drain: everything is fresh (batches of 2 forces two calls).
  auto drained = device.DrainOutbox(2);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value().sent, 3u);
  EXPECT_EQ(drained.value().fresh, 3u);
  EXPECT_EQ(drained.value().deduplicated, 0u);
  EXPECT_EQ(drained.value().remaining, 0u);
  EXPECT_EQ(device.deposits_sent(), 3u);

  // Crash between the warehouse ack and Acknowledge(): restore the
  // pre-drain disk state and reopen.
  outbox.reset();
  fs::remove_all(dir);
  fs::copy(snapshot, dir, fs::copy_options::recursive);
  outbox = Outbox::Open(obx).value();
  EXPECT_EQ(outbox->depth(), 3u);
  device.AttachOutbox(outbox.get());

  // Replay: the MWS absorbs all three; the send count must not move.
  auto replayed = device.DrainOutbox(64);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().fresh, 0u);
  EXPECT_EQ(replayed.value().deduplicated, 3u);
  EXPECT_EQ(device.deposits_sent(), 3u);
  EXPECT_EQ(device.deposits_deduped(), 3u);
  EXPECT_EQ(outbox->depth(), 0u);

  // The warehouse holds exactly one copy of each reading.
  auto messages =
      scenario->mws().message_db().FindByAttribute(attr).value();
  EXPECT_EQ(messages.size(), 3u);
}

TEST_F(OutboxDrainTest, SmallFleetUnderChurnDeliversExactlyOnce) {
  sim::FleetSimulator::Options options;
  options.scenario.devices_per_class = 2;
  options.scenario.resilience.enable = true;
  options.scenario.resilience.request_loss_rate = 0.05;
  options.scenario.resilience.response_drop_rate = 0.05;
  options.scenario.resilience.store_fault_rate = 0.03;
  options.outbox_root = root_ + "/fleet";
  options.rounds = 3;
  options.readings_per_round = 2;
  options.drain_batch = 3;
  options.crash_mid_enqueue_rate = 0.3;
  options.crash_before_ack_rate = 0.3;
  options.disk_full_rate = 0.05;
  options.max_segment_bytes = 512;  // force multi-segment queues

  auto fleet = sim::FleetSimulator::Create(options).value();
  auto report = fleet->Run().value();

  EXPECT_EQ(report.devices, 6u);
  EXPECT_GT(report.enqueued, 0u);
  EXPECT_GT(report.crashes_mid_enqueue + report.crashes_before_ack, 0u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.unexpected, 0u);
  EXPECT_EQ(report.final_depth, 0u);
  EXPECT_EQ(report.recovery_depth_mismatches, 0u);
  EXPECT_TRUE(report.ExactlyOnce());
  EXPECT_EQ(report.warehoused, report.enqueued);
  EXPECT_GT(report.latency_samples, 0u);
  EXPECT_GT(report.latency_p99_us, 0.0);
}

}  // namespace
}  // namespace mws::client
