// Restart tests: an MWS backed by the on-disk KV store is stopped and
// reopened; registrations, policies and stored messages must survive and
// the protocol must keep working against the recovered state. (The PKG
// master secret is regenerated per process here, so messages sealed
// before the restart need the *same* PKG — we keep it alive across the
// simulated MWS restart, mirroring the paper's separation of concerns.)

#include <gtest/gtest.h>

#include <filesystem>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/crypto/hmac.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/wire/auth.h"

namespace mws {
namespace {

using util::Bytes;
using util::BytesFromString;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("mwsibe_persist_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    store::KvStore::RemoveFiles(path_);
  }
  void TearDown() override { store::KvStore::RemoveFiles(path_); }

  std::string path_;
};

TEST_F(PersistenceTest, FullStateSurvivesMwsRestart) {
  util::SimulatedClock clock(1'000'000'000);
  util::DeterministicRandom rng(3);
  Bytes service_key(32, 0x77);
  pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      service_key, &clock, &rng);
  Bytes mac_key(32, 0x21);
  auto rc_keys = crypto::RsaGenerateKeyPair(768, rng).value();

  uint64_t message_id = 0;
  {
    // First MWS process: register, grant, deposit, then "crash".
    auto storage = store::KvStore::Open({.path = path_}).value();
    mws::MwsService warehouse(storage.get(), service_key, &clock, &rng);
    ASSERT_TRUE(warehouse.RegisterDevice("SD-1", mac_key).ok());
    ASSERT_TRUE(warehouse
                    .RegisterReceivingClient(
                        "RC-1", wire::HashPassword("pw"),
                        crypto::SerializeRsaPublicKey(rc_keys.public_key))
                    .ok());
    ASSERT_TRUE(warehouse.GrantAttribute("RC-1", "ELECTRIC-PERSIST").ok());

    wire::InProcessTransport transport;
    warehouse.RegisterEndpoints(&transport);
    pkg.RegisterEndpoints(&transport);
    client::SmartDevice device("SD-1", mac_key, pkg.PublicParams(),
                               crypto::CipherKind::kDes, &transport, &clock,
                               &rng);
    auto id = device.DepositMessage("ELECTRIC-PERSIST",
                                    BytesFromString("reading before crash"));
    ASSERT_TRUE(id.ok());
    message_id = id.value();
    ASSERT_TRUE(storage->Flush().ok());
    // Destructors simulate the process exiting.
  }

  // Second MWS process over the same files.
  auto storage = store::KvStore::Open({.path = path_}).value();
  mws::MwsService warehouse(storage.get(), service_key, &clock, &rng);

  // State is back.
  auto table = warehouse.PolicyTable().value();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].identity, "RC-1");
  EXPECT_EQ(warehouse.message_db().Count(), 1u);
  EXPECT_EQ(warehouse.message_db().Get(message_id)->attribute,
            "ELECTRIC-PERSIST");
  // Duplicate registration is still rejected (user records persisted).
  EXPECT_FALSE(warehouse
                   .RegisterReceivingClient("RC-1", Bytes(32, 1), {})
                   .ok());
  EXPECT_FALSE(warehouse.RegisterDevice("SD-1", mac_key).ok());

  // The full protocol still runs against the recovered warehouse.
  wire::InProcessTransport transport;
  warehouse.RegisterEndpoints(&transport);
  pkg.RegisterEndpoints(&transport);
  client::ReceivingClient rc("RC-1", "pw", std::move(rc_keys),
                             pkg.PublicParams(), crypto::CipherKind::kDes,
                             crypto::CipherKind::kDes, &transport, &clock,
                             &rng);
  auto messages = rc.FetchAndDecrypt();
  ASSERT_TRUE(messages.ok()) << messages.status();
  ASSERT_EQ(messages->size(), 1u);
  EXPECT_EQ(util::StringFromBytes(messages->at(0).plaintext),
            "reading before crash");

  // New deposits continue with monotonically increasing ids.
  client::SmartDevice device("SD-1", mac_key, pkg.PublicParams(),
                             crypto::CipherKind::kDes, &transport, &clock,
                             &rng);
  auto id2 = device.DepositMessage("ELECTRIC-PERSIST",
                                   BytesFromString("reading after restart"));
  ASSERT_TRUE(id2.ok());
  EXPECT_GT(id2.value(), message_id);
  EXPECT_EQ(rc.FetchAndDecrypt()->size(), 2u);
}

TEST_F(PersistenceTest, AidCounterSurvivesRestart) {
  util::SimulatedClock clock(1'000'000'000);
  util::DeterministicRandom rng(4);
  uint64_t first_aid = 0;
  {
    auto storage = store::KvStore::Open({.path = path_}).value();
    store::PolicyDb db(storage.get());
    first_aid = db.Grant("RC-1", "A1").value();
    db.Revoke("RC-1", "A1").ok();
    storage->Flush().ok();
  }
  auto storage = store::KvStore::Open({.path = path_}).value();
  store::PolicyDb db(storage.get());
  // AIDs must never be reused, even across restarts after revocation.
  EXPECT_GT(db.Grant("RC-2", "A2").value(), first_aid);
  (void)clock;
  (void)rng;
}

TEST_F(PersistenceTest, CompactionPreservesProtocolState) {
  util::SimulatedClock clock(1'000'000'000);
  util::DeterministicRandom rng(5);
  auto storage = store::KvStore::Open({.path = path_}).value();
  store::PolicyDb policies(storage.get());
  // Churn: grants and revocations bloat the log.
  for (int round = 0; round < 20; ++round) {
    policies.Grant("RC", "ATTR-" + std::to_string(round)).value();
    if (round % 2 == 0) {
      policies.Revoke("RC", "ATTR-" + std::to_string(round)).ok();
    }
  }
  size_t live_rows = policies.AllRows().value().size();
  auto dropped = storage->Compact();
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(dropped.value(), 0u);
  EXPECT_EQ(policies.AllRows().value().size(), live_rows);

  // And the compacted log still recovers.
  storage->Flush().ok();
  storage.reset();
  auto reopened = store::KvStore::Open({.path = path_}).value();
  store::PolicyDb recovered(reopened.get());
  EXPECT_EQ(recovered.AllRows().value().size(), live_rows);
  (void)clock;
  (void)rng;
}

}  // namespace
}  // namespace mws
