// RetryingTransport unit tests (deterministic, instant: sleeps advance a
// SimulatedClock through the injected sleep hook) and the end-to-end
// at-least-once test: a dropped deposit response forces a retransmit,
// which the MWS dedupes by (ID_SD, nonce) so the message is stored
// exactly once.

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "src/sim/scenario.h"
#include "src/store/message_db.h"
#include "src/util/clock.h"
#include "src/util/fault.h"
#include "src/wire/retry.h"

namespace mws::wire {
namespace {

using util::Bytes;
using util::BytesFromString;

/// Scripted transport: pops one outcome per call; an empty script means
/// success echoing the request.
class ScriptedTransport : public Transport {
 public:
  void FailNext(const util::Status& status, int times = 1) {
    for (int i = 0; i < times; ++i) script_.push_back(status);
  }

  util::Result<Bytes> Call(const std::string& endpoint,
                           const Bytes& request) override {
    ++calls_;
    last_endpoint_ = endpoint;
    if (!script_.empty()) {
      util::Status status = script_.front();
      script_.pop_front();
      if (!status.ok()) return status;
    }
    return request;
  }

  int calls() const { return calls_; }
  const std::string& last_endpoint() const { return last_endpoint_; }

 private:
  std::deque<util::Status> script_;
  int calls_ = 0;
  std::string last_endpoint_;
};

class RetryTest : public ::testing::Test {
 protected:
  RetryTest() : clock_(/*start_micros=*/1'000'000) {}

  /// Builds the RetryingTransport under test; its sleeps advance the
  /// simulated clock and are recorded for schedule assertions.
  RetryingTransport& MakeTransport(RetryOptions options) {
    transport_ = std::make_unique<RetryingTransport>(&scripted_, &clock_,
                                                     options);
    transport_->set_sleep_fn([this](int64_t micros) {
      sleeps_.push_back(micros);
      clock_.AdvanceMicros(micros);
    });
    return *transport_;
  }

  util::SimulatedClock clock_;
  ScriptedTransport scripted_;
  std::unique_ptr<RetryingTransport> transport_;
  std::vector<int64_t> sleeps_;
};

TEST_F(RetryTest, SuccessNeedsNoRetry) {
  RetryingTransport& transport = MakeTransport({});
  auto result = transport.Call("ep", BytesFromString("req"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), BytesFromString("req"));
  EXPECT_EQ(scripted_.calls(), 1);
  EXPECT_EQ(transport.stats().retries.load(), 0u);
  EXPECT_TRUE(sleeps_.empty());
}

TEST_F(RetryTest, RetryableFailuresAreRetriedWithBackoff) {
  RetryOptions options;
  options.initial_backoff_micros = 10'000;
  options.max_backoff_micros = 500'000;
  RetryingTransport& transport = MakeTransport(options);
  scripted_.FailNext(util::Status::Unavailable("flaky"), 2);

  auto result = transport.Call("ep", BytesFromString("req"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(scripted_.calls(), 3);
  EXPECT_EQ(transport.stats().retries.load(), 2u);
  EXPECT_EQ(transport.stats().attempts.load(), 3u);
  ASSERT_EQ(sleeps_.size(), 2u);
  for (int64_t sleep : sleeps_) {
    EXPECT_GE(sleep, options.initial_backoff_micros);
    EXPECT_LE(sleep, options.max_backoff_micros);
  }
}

TEST_F(RetryTest, EachRetryableCodeIsRetried) {
  for (util::Status status :
       {util::Status::Unavailable("u"), util::Status::ResourceExhausted("r"),
        util::Status::IoError("i")}) {
    ScriptedTransport scripted;
    scripted.FailNext(status);
    RetryingTransport transport(&scripted, &clock_);
    transport.set_sleep_fn(
        [this](int64_t micros) { clock_.AdvanceMicros(micros); });
    EXPECT_TRUE(transport.Call("ep", BytesFromString("q")).ok())
        << status.ToString();
    EXPECT_EQ(scripted.calls(), 2) << status.ToString();
  }
}

TEST_F(RetryTest, NonRetryableFailureReturnsImmediately) {
  for (util::Status status : {util::Status::InvalidArgument("bad"),
                              util::Status::NotFound("missing"),
                              util::Status::PermissionDenied("no"),
                              util::Status::DeadlineExceeded("late")}) {
    ScriptedTransport scripted;
    scripted.FailNext(status);
    RetryingTransport transport(&scripted, &clock_);
    auto result = transport.Call("ep", BytesFromString("q"));
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), status.code());
    EXPECT_EQ(scripted.calls(), 1) << status.ToString();
  }
}

TEST_F(RetryTest, ExhaustedAttemptsReturnLastError) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryingTransport& transport = MakeTransport(options);
  scripted_.FailNext(util::Status::Unavailable("down"), 10);

  auto result = transport.Call("ep", BytesFromString("req"));
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_EQ(scripted_.calls(), 3);
  EXPECT_EQ(sleeps_.size(), 2u);  // no sleep after the final attempt
}

TEST_F(RetryTest, DeadlineBoundsTheWholeCall) {
  RetryOptions options;
  options.max_attempts = 1'000;
  options.call_deadline_micros = 400'000;
  options.initial_backoff_micros = 50'000;
  RetryingTransport& transport = MakeTransport(options);
  scripted_.FailNext(util::Status::Unavailable("down"), 1'000);

  const int64_t start = clock_.NowMicros();
  auto result = transport.Call("ep", BytesFromString("req"));
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status()
                                                           .ToString();
  // The call gave up within its budget (sleeps are clamped to the
  // remaining deadline) instead of hanging.
  EXPECT_LE(clock_.NowMicros() - start, options.call_deadline_micros);
  EXPECT_EQ(transport.stats().deadline_exceeded.load(), 1u);
  EXPECT_LT(scripted_.calls(), 1'000);
}

TEST_F(RetryTest, RetryBudgetStopsHammeringAPersistentlyDownServer) {
  RetryOptions options;
  options.max_attempts = 10;
  options.retry_budget = 3.0;
  options.budget_refund = 0.0;
  RetryingTransport& transport = MakeTransport(options);
  scripted_.FailNext(util::Status::Unavailable("down"), 1'000);

  // First call: burns the 3 retry tokens, then returns the error.
  EXPECT_FALSE(transport.Call("ep", BytesFromString("req")).ok());
  EXPECT_EQ(scripted_.calls(), 4);  // 1 attempt + 3 budgeted retries

  // Budget dry: the next failure is returned after a single attempt.
  EXPECT_FALSE(transport.Call("ep", BytesFromString("req")).ok());
  EXPECT_EQ(scripted_.calls(), 5);
  EXPECT_GE(transport.stats().budget_exhausted.load(), 1u);
}

TEST_F(RetryTest, SuccessRefundsBudget) {
  RetryOptions options;
  options.retry_budget = 5.0;
  options.budget_refund = 0.5;
  RetryingTransport& transport = MakeTransport(options);
  scripted_.FailNext(util::Status::Unavailable("flaky"), 1);
  ASSERT_TRUE(transport.Call("ep", BytesFromString("req")).ok());
  // Spent 1.0 on the retry, refunded 0.5 on the success.
  EXPECT_DOUBLE_EQ(transport.budget(), 4.5);
}

TEST_F(RetryTest, BackoffScheduleIsDeterministicPerSeed) {
  auto schedule = [this](uint64_t seed) {
    ScriptedTransport scripted;
    scripted.FailNext(util::Status::Unavailable("flaky"), 5);
    RetryOptions options;
    options.max_attempts = 6;
    options.seed = seed;
    std::vector<int64_t> sleeps;
    RetryingTransport transport(&scripted, &clock_, options);
    transport.set_sleep_fn([this, &sleeps](int64_t micros) {
      sleeps.push_back(micros);
      clock_.AdvanceMicros(micros);
    });
    EXPECT_TRUE(transport.Call("ep", BytesFromString("q")).ok());
    return sleeps;
  };
  EXPECT_EQ(schedule(21), schedule(21));
  EXPECT_NE(schedule(21), schedule(22));
}

// --- End-to-end at-least-once safety ---

class ResilientScenarioTest : public ::testing::Test {};

TEST_F(ResilientScenarioTest, DroppedDepositResponseIsDedupedOnRetry) {
  sim::UtilityScenario::Options options;
  options.resilience.enable = true;
  auto s = sim::UtilityScenario::Create(options).value();

  // Drop exactly one deposit response: the handler runs (message stored,
  // ack lost), the client retries, the MWS must dedupe the retransmit.
  s->fault_injector()->AddRule({.kind = util::FaultKind::kConnectionDrop,
                                .pattern = "transport.call/mws.deposit",
                                .nth = 1});

  auto deposited = s->DepositReadings(/*per_device=*/2);
  ASSERT_TRUE(deposited.ok()) << deposited.status().ToString();
  EXPECT_EQ(deposited.value(), 6u);  // 3 devices x 2 readings

  const auto& db = s->mws().message_db();
  EXPECT_EQ(db.Count(), 6u);  // retransmit did not double-store
  EXPECT_EQ(db.dedup_hits(), 1u);
  EXPECT_EQ(s->faulty_transport()->responses_lost(), 1u);
  EXPECT_EQ(s->retrying_transport()->stats().retries.load(), 1u);

  // The stored copy is still end-to-end decryptable by an entitled RC.
  auto messages = s->RetrieveFor(sim::UtilityScenario::kCServices);
  ASSERT_TRUE(messages.ok()) << messages.status().ToString();
  EXPECT_EQ(messages->size(), 6u);
}

TEST_F(ResilientScenarioTest, TornStoreWriteIsResumedNotDoubled) {
  sim::UtilityScenario::Options options;
  options.resilience.enable = true;
  auto s = sim::UtilityScenario::Create(options).value();

  // Tear the first message-record put: applied but acked as failed, so
  // the deposit errors server-side and the client retransmits.
  s->fault_injector()->AddRule({.kind = util::FaultKind::kTornWrite,
                                .pattern = "table.put/m/",
                                .nth = 1});

  auto deposited = s->DepositReadings(/*per_device=*/1);
  ASSERT_TRUE(deposited.ok()) << deposited.status().ToString();
  const auto& db = s->mws().message_db();
  EXPECT_EQ(db.Count(), 3u);
  EXPECT_EQ(s->faulty_table()->torn_writes(), 1u);
  EXPECT_GE(s->retrying_transport()->stats().retries.load(), 1u);

  auto messages = s->RetrieveFor(sim::UtilityScenario::kCServices);
  ASSERT_TRUE(messages.ok()) << messages.status().ToString();
  EXPECT_EQ(messages->size(), 3u);
}

}  // namespace
}  // namespace mws::wire
