// Failure-injection tests: a Table decorator that fails on command wraps
// the typed databases and the MWS service, verifying that storage
// failures surface as Status errors (never crashes) and that the
// databases stay consistent after a failed multi-key operation.

#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/mws/mws_service.h"
#include "src/store/kvstore.h"
#include "src/store/message_db.h"
#include "src/store/policy_db.h"
#include "src/util/clock.h"

namespace mws::store {
namespace {

using util::Bytes;
using util::BytesFromString;

/// Delegating table that can be armed to fail writes (optionally after a
/// countdown, to hit the middle of multi-key operations).
class FaultyTable : public Table {
 public:
  explicit FaultyTable(Table* base) : base_(base) {}

  void FailWritesAfter(int countdown) {
    countdown_ = countdown;
    armed_ = true;
  }
  void Heal() { armed_ = false; }

  util::Status Put(const std::string& key, const Bytes& value) override {
    MWS_RETURN_IF_ERROR(MaybeFail());
    return base_->Put(key, value);
  }
  util::Result<Bytes> Get(const std::string& key) const override {
    return base_->Get(key);
  }
  util::Status Delete(const std::string& key) override {
    MWS_RETURN_IF_ERROR(MaybeFail());
    return base_->Delete(key);
  }
  bool Contains(const std::string& key) const override {
    return base_->Contains(key);
  }
  std::vector<std::pair<std::string, Bytes>> Scan(
      const std::string& prefix) const override {
    return base_->Scan(prefix);
  }
  size_t Size() const override { return base_->Size(); }
  util::Status Flush() override { return base_->Flush(); }

 private:
  util::Status MaybeFail() {
    if (!armed_) return util::Status::Ok();
    if (countdown_ > 0) {
      --countdown_;
      return util::Status::Ok();
    }
    return util::Status::IoError("injected write failure");
  }

  Table* base_;
  bool armed_ = false;
  int countdown_ = 0;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : base_(KvStore::Open({.path = ""}).value()), faulty_(base_.get()) {}

  std::unique_ptr<KvStore> base_;
  FaultyTable faulty_;
};

TEST_F(FaultInjectionTest, MessageDbAppendPropagatesFailure) {
  MessageDb db(&faulty_);
  StoredMessage m;
  m.u = Bytes(10, 1);
  m.ciphertext = Bytes(10, 2);
  m.attribute = "A";
  m.nonce = Bytes(16, 3);
  m.device_id = "SD";

  faulty_.FailWritesAfter(0);
  auto result = db.Append(m);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);

  // After healing, appends work and ids remain sequential from 1.
  faulty_.Heal();
  EXPECT_EQ(db.Append(m).value(), 1u);
}

TEST_F(FaultInjectionTest, MessageDbPartialAppendDoesNotCorruptReads) {
  MessageDb db(&faulty_);
  StoredMessage m;
  m.u = Bytes(10, 1);
  m.ciphertext = Bytes(10, 2);
  m.attribute = "A";
  m.nonce = Bytes(16, 3);
  m.device_id = "SD";
  ASSERT_TRUE(db.Append(m).ok());

  // Fail on the second write of the three-write append (the index).
  faulty_.FailWritesAfter(1);
  EXPECT_FALSE(db.Append(m).ok());
  faulty_.Heal();

  // The first message is still fully readable; a dangling record may
  // exist but must not break queries.
  auto visible = db.FindByAttribute("A");
  ASSERT_TRUE(visible.ok());
  EXPECT_GE(visible->size(), 1u);
  EXPECT_EQ(visible->at(0).id, 1u);
}

TEST_F(FaultInjectionTest, PolicyDbGrantPropagatesFailure) {
  PolicyDb db(&faulty_);
  faulty_.FailWritesAfter(0);
  EXPECT_FALSE(db.Grant("RC", "A").ok());
  faulty_.Heal();
  EXPECT_TRUE(db.Grant("RC", "A").ok());
  EXPECT_TRUE(db.HasAccess("RC", "A"));
}

TEST_F(FaultInjectionTest, PolicyDbRevokeMidFailureStaysQueryable) {
  PolicyDb db(&faulty_);
  uint64_t aid = db.Grant("RC", "A").value();
  // Fail the second delete (the AID row).
  faulty_.FailWritesAfter(1);
  auto status = db.Revoke("RC", "A");
  EXPECT_FALSE(status.ok());
  faulty_.Heal();
  // The grant row is gone; access is already revoked (fail-closed), and
  // re-granting produces a fresh AID.
  EXPECT_FALSE(db.HasAccess("RC", "A"));
  uint64_t aid2 = db.Grant("RC", "A").value();
  EXPECT_GT(aid2, aid);
}

TEST_F(FaultInjectionTest, MwsDepositSurfacesStorageErrors) {
  util::SimulatedClock clock(1'000'000);
  util::DeterministicRandom rng(1);
  mws::MwsService service(&faulty_, Bytes(32, 1), &clock, &rng);
  Bytes mac_key(32, 9);
  ASSERT_TRUE(service.RegisterDevice("SD-1", mac_key).ok());

  wire::DepositRequest request;
  request.u = BytesFromString("u");
  request.ciphertext = BytesFromString("c");
  request.attribute = "A1";
  request.nonce = Bytes(16, 0);
  request.device_id = "SD-1";
  request.timestamp_micros = clock.NowMicros();
  request.mac = crypto::HmacSha256(mac_key, request.AuthenticatedBytes());

  faulty_.FailWritesAfter(0);
  auto result = service.Deposit(request);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
  faulty_.Heal();
  EXPECT_TRUE(service.Deposit(request).ok());
}

}  // namespace
}  // namespace mws::store
