// Failure-injection tests: the shared store::FaultyTable decorator
// (src/store/faulty_table.h) wraps the typed databases and the MWS
// service, verifying that storage failures surface as Status errors
// (never crashes), that the databases stay consistent after a failed
// multi-key operation, and that the seeded util::FaultInjector drives
// deterministic fault schedules — including torn writes, the
// applied-but-acked-as-failed shape that at-least-once dedup absorbs.

#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/mws/mws_service.h"
#include "src/store/faulty_table.h"
#include "src/store/kvstore.h"
#include "src/store/message_db.h"
#include "src/store/policy_db.h"
#include "src/util/clock.h"
#include "src/util/fault.h"

namespace mws::store {
namespace {

using util::Bytes;
using util::BytesFromString;

StoredMessage SampleMessage() {
  StoredMessage m;
  m.u = Bytes(10, 1);
  m.ciphertext = Bytes(10, 2);
  m.attribute = "A";
  m.nonce = Bytes(16, 3);
  m.device_id = "SD";
  return m;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : base_(KvStore::Open({.path = ""}).value()),
        injector_(/*seed=*/7),
        faulty_(base_.get(), &injector_) {}

  std::unique_ptr<KvStore> base_;
  util::FaultInjector injector_;
  FaultyTable faulty_;
};

TEST_F(FaultInjectionTest, MessageDbAppendPropagatesFailure) {
  MessageDb db(&faulty_);
  StoredMessage m = SampleMessage();

  faulty_.FailWritesAfter(0);
  auto result = db.Append(m);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);

  // After healing, appends work and ids remain sequential from 1.
  faulty_.Heal();
  EXPECT_EQ(db.Append(m).value(), 1u);
}

TEST_F(FaultInjectionTest, MessageDbPartialAppendDoesNotCorruptReads) {
  MessageDb db(&faulty_);
  StoredMessage m = SampleMessage();
  ASSERT_TRUE(db.Append(m).ok());

  // Fail on the second write of the three-write append (the index).
  faulty_.FailWritesAfter(1);
  EXPECT_FALSE(db.Append(m).ok());
  faulty_.Heal();

  // The first message is still fully readable; a dangling record may
  // exist but must not break queries.
  auto visible = db.FindByAttribute("A");
  ASSERT_TRUE(visible.ok());
  EXPECT_GE(visible->size(), 1u);
  EXPECT_EQ(visible->at(0).id, 1u);
}

TEST_F(FaultInjectionTest, DiskFullFailsWithoutApplyingAndIsCounted) {
  MessageDb db(&faulty_);
  injector_.AddRule({.kind = util::FaultKind::kDiskFull,
                     .pattern = "table.",
                     .nth = 1,
                     .code = util::StatusCode::kResourceExhausted,
                     .message = "store volume full"});

  auto result = db.Append(SampleMessage());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(faulty_.disk_full_faults(), 1u);

  // Unlike a torn write, nothing was applied: the retried append is a
  // fresh store (id 1, not a dedup hit) and exactly one copy exists.
  auto outcome = db.AppendDeduped(SampleMessage());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->id, 1u);
  EXPECT_FALSE(outcome->deduplicated);
  EXPECT_EQ(db.FindByAttribute("A")->size(), 1u);
}

TEST_F(FaultInjectionTest, PolicyDbGrantPropagatesFailure) {
  PolicyDb db(&faulty_);
  faulty_.FailWritesAfter(0);
  EXPECT_FALSE(db.Grant("RC", "A").ok());
  faulty_.Heal();
  EXPECT_TRUE(db.Grant("RC", "A").ok());
  EXPECT_TRUE(db.HasAccess("RC", "A"));
}

TEST_F(FaultInjectionTest, PolicyDbRevokeMidFailureStaysQueryable) {
  PolicyDb db(&faulty_);
  uint64_t aid = db.Grant("RC", "A").value();
  // Fail the second delete (the AID row).
  faulty_.FailWritesAfter(1);
  auto status = db.Revoke("RC", "A");
  EXPECT_FALSE(status.ok());
  faulty_.Heal();
  // The grant row is gone; access is already revoked (fail-closed), and
  // re-granting produces a fresh AID.
  EXPECT_FALSE(db.HasAccess("RC", "A"));
  uint64_t aid2 = db.Grant("RC", "A").value();
  EXPECT_GT(aid2, aid);
}

TEST_F(FaultInjectionTest, MwsDepositSurfacesStorageErrors) {
  util::SimulatedClock clock(1'000'000);
  util::DeterministicRandom rng(1);
  mws::MwsService service(&faulty_, Bytes(32, 1), &clock, &rng);
  Bytes mac_key(32, 9);
  ASSERT_TRUE(service.RegisterDevice("SD-1", mac_key).ok());

  wire::DepositRequest request;
  request.u = BytesFromString("u");
  request.ciphertext = BytesFromString("c");
  request.attribute = "A1";
  request.nonce = Bytes(16, 0);
  request.device_id = "SD-1";
  request.timestamp_micros = clock.NowMicros();
  request.mac = crypto::HmacSha256(mac_key, request.AuthenticatedBytes());

  faulty_.FailWritesAfter(0);
  auto result = service.Deposit(request);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
  faulty_.Heal();
  EXPECT_TRUE(service.Deposit(request).ok());
}

// --- Injector-driven faults ---

TEST_F(FaultInjectionTest, NthTriggerFiresExactlyOnce) {
  injector_.AddRule({.kind = util::FaultKind::kError,
                     .pattern = "table.put/",
                     .nth = 2,
                     .code = util::StatusCode::kUnavailable});
  EXPECT_TRUE(faulty_.Put("k1", BytesFromString("v")).ok());
  auto second = faulty_.Put("k2", BytesFromString("v"));
  EXPECT_TRUE(second.IsUnavailable()) << second.ToString();
  // kError never applied the write.
  EXPECT_FALSE(base_->Contains("k2"));
  // Spent: every later matching call proceeds.
  EXPECT_TRUE(faulty_.Put("k3", BytesFromString("v")).ok());
  EXPECT_EQ(injector_.fired(), 1u);
}

TEST_F(FaultInjectionTest, PatternScopesFaultsToMatchingOperations) {
  injector_.AddRule({.kind = util::FaultKind::kError,
                     .pattern = "table.delete/",
                     .nth = 1});
  EXPECT_TRUE(faulty_.Put("k", BytesFromString("v")).ok());
  EXPECT_FALSE(faulty_.Delete("k").ok());  // first delete faulted
  EXPECT_TRUE(base_->Contains("k"));
  EXPECT_TRUE(faulty_.Delete("k").ok());
}

TEST_F(FaultInjectionTest, TornWriteAppliesThenReportsFailure) {
  injector_.AddRule({.kind = util::FaultKind::kTornWrite,
                     .pattern = "table.put/",
                     .nth = 1});
  auto status = faulty_.Put("torn", BytesFromString("v"));
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  // The write went through even though the caller saw a failure — the
  // lost-ack shape that forces retries to dedupe.
  EXPECT_TRUE(base_->Contains("torn"));
  EXPECT_EQ(faulty_.torn_writes(), 1u);
}

TEST_F(FaultInjectionTest, SameSeedSameFaultSchedule) {
  auto schedule = [](uint64_t seed) {
    util::FaultInjector injector(seed);
    injector.AddRule({.kind = util::FaultKind::kError,
                      .pattern = "",
                      .probability = 0.3});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.Evaluate("op").has_value());
    }
    return fired;
  };
  EXPECT_EQ(schedule(11), schedule(11));
  EXPECT_NE(schedule(11), schedule(12));
}

TEST_F(FaultInjectionTest, TornAppendDedupedResumesReservedId) {
  MessageDb db(&faulty_);
  StoredMessage m = SampleMessage();

  // Tear the message-record put (second write: marker first, then the
  // message record): applied but acked as failed.
  injector_.AddRule({.kind = util::FaultKind::kTornWrite,
                     .pattern = "table.put/m/",
                     .nth = 1});
  auto first = db.AppendDeduped(m);
  EXPECT_FALSE(first.ok());

  // The retransmit resumes the reserved id instead of double-storing.
  auto second = db.AppendDeduped(m);
  ASSERT_TRUE(second.ok());
  auto visible = db.FindByAttribute("A");
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(visible->size(), 1u);
  EXPECT_EQ(visible->at(0).id, second->id);
}

TEST_F(FaultInjectionTest, CompletedAppendDedupedIsDeduplicated) {
  MessageDb db(&faulty_);
  StoredMessage m = SampleMessage();
  auto first = db.AppendDeduped(m);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->deduplicated);

  // Retransmit of a fully stored deposit: same id, flagged, not stored
  // twice.
  auto second = db.AppendDeduped(m);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->deduplicated);
  EXPECT_EQ(second->id, first->id);
  EXPECT_EQ(db.Count(), 1u);
  EXPECT_EQ(db.dedup_hits(), 1u);
}

}  // namespace
}  // namespace mws::store
