// End-to-end tests of the full three-phase protocol (paper Fig. 4) over
// the composed stack, plus the threat-model invariants of DESIGN.md §7.

#include <gtest/gtest.h>

#include "src/crypto/modes.h"
#include "src/ibe/attribute.h"
#include "src/ibe/bf_ibe.h"
#include "src/sim/scenario.h"
#include "src/wire/auth.h"

namespace mws::sim {
namespace {

using client::ReceivedMessage;
using util::Bytes;
using util::BytesFromString;

class ProtocolE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = UtilityScenario::Create({});
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    s_ = std::move(scenario).value();
  }

  std::unique_ptr<UtilityScenario> s_;
};

TEST_F(ProtocolE2eTest, FullPipelineDeliversPlaintext) {
  ASSERT_TRUE(s_->DepositReadings(2).ok());
  auto messages = s_->RetrieveFor(UtilityScenario::kCServices);
  ASSERT_TRUE(messages.ok()) << messages.status();
  // 3 classes x 1 device x 2 readings, C-Services sees all.
  ASSERT_EQ(messages->size(), 6u);
  for (const ReceivedMessage& m : messages.value()) {
    auto reading = MeterReading::FromPayload(m.plaintext);
    ASSERT_TRUE(reading.ok()) << reading.status();
    EXPECT_FALSE(reading->device_id.empty());
  }
}

TEST_F(ProtocolE2eTest, AccessMatrixMatchesFig1) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  // C-Services: all three classes.
  auto all = s_->RetrieveFor(UtilityScenario::kCServices).value();
  EXPECT_EQ(all.size(), 3u);
  // Electric & Gas: two classes.
  auto eg = s_->RetrieveFor(UtilityScenario::kElectricGas).value();
  EXPECT_EQ(eg.size(), 2u);
  for (const ReceivedMessage& m : eg) {
    auto reading = MeterReading::FromPayload(m.plaintext).value();
    EXPECT_NE(reading.klass, MeterClass::kWater);
  }
  // Water & Resources: water only.
  auto water = s_->RetrieveFor(UtilityScenario::kWaterResources).value();
  ASSERT_EQ(water.size(), 1u);
  EXPECT_EQ(MeterReading::FromPayload(water[0].plaintext)->klass,
            MeterClass::kWater);
}

TEST_F(ProtocolE2eTest, IncrementalRetrievalAfterId) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  auto first = s_->RetrieveFor(UtilityScenario::kCServices).value();
  ASSERT_EQ(first.size(), 3u);
  uint64_t max_id = 0;
  for (const auto& m : first) max_id = std::max(max_id, m.message_id);
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  auto second =
      s_->RetrieveFor(UtilityScenario::kCServices, max_id).value();
  EXPECT_EQ(second.size(), 3u);
  for (const auto& m : second) EXPECT_GT(m.message_id, max_id);
}

TEST_F(ProtocolE2eTest, TimeWindowRetrieval) {
  // Deposits at t0, t0+10s, t0+20s (DepositReadings steps 1s per
  // message across 3 devices; use explicit deposits instead).
  auto& device = s_->devices()[0];
  int64_t t0 = s_->clock().NowMicros();
  for (int i = 0; i < 3; ++i) {
    s_->clock().SetMicros(t0 + i * 10'000'000ll);
    ASSERT_TRUE(device
                    .DepositMessage(UtilityScenario::kElectricAttr,
                                    BytesFromString("r" + std::to_string(i)))
                    .ok());
  }
  auto& rc = s_->company(UtilityScenario::kCServices);
  // Window covering only the middle deposit.
  auto window =
      rc.FetchAndDecrypt(0, t0 + 5'000'000ll, t0 + 15'000'000ll);
  ASSERT_TRUE(window.ok()) << window.status();
  ASSERT_EQ(window->size(), 1u);
  EXPECT_EQ(util::StringFromBytes(window->at(0).plaintext), "r1");
  // No window = everything.
  EXPECT_EQ(rc.FetchAndDecrypt()->size(), 3u);
  // Window composes with after_id.
  auto combined = rc.FetchAndDecrypt(window->at(0).message_id, t0,
                                     t0 + 30'000'000ll);
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ(combined->size(), 1u);
  EXPECT_EQ(util::StringFromBytes(combined->at(0).plaintext), "r2");
}

TEST_F(ProtocolE2eTest, EmptyWarehouseYieldsNoMessages) {
  auto messages = s_->RetrieveFor(UtilityScenario::kCServices);
  ASSERT_TRUE(messages.ok());
  EXPECT_TRUE(messages->empty());
}

// --- Threat-model invariant: message integrity (requirement ii) ---

TEST_F(ProtocolE2eTest, TamperedDepositRejected) {
  client::SmartDevice& device = s_->devices()[0];
  auto request = device.BuildDeposit(UtilityScenario::kElectricAttr,
                                     BytesFromString("reading"));
  ASSERT_TRUE(request.ok());

  // Flip one ciphertext bit: the SDA must reject.
  wire::DepositRequest tampered = request.value();
  tampered.ciphertext[0] ^= 1;
  auto result = s_->mws().Deposit(tampered);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnauthenticated());

  // Retarget the attribute (access-control bypass attempt): rejected.
  tampered = request.value();
  tampered.attribute = UtilityScenario::kWaterAttr;
  EXPECT_TRUE(s_->mws().Deposit(tampered).status().IsUnauthenticated());

  // Spoofed device id: rejected.
  tampered = request.value();
  tampered.device_id = "GHOST-METER-9";
  EXPECT_TRUE(s_->mws().Deposit(tampered).status().IsUnauthenticated());

  // The untampered original is accepted.
  EXPECT_TRUE(s_->mws().Deposit(request.value()).ok());
}

TEST_F(ProtocolE2eTest, StaleDepositTimestampRejected) {
  client::SmartDevice& device = s_->devices()[0];
  auto request = device.BuildDeposit(UtilityScenario::kElectricAttr,
                                     BytesFromString("reading"));
  ASSERT_TRUE(request.ok());
  // Advance simulated time beyond the freshness window.
  s_->clock().AdvanceMicros(s_->mws().options().freshness_window_micros + 1);
  EXPECT_TRUE(s_->mws().Deposit(request.value()).status().IsUnauthenticated());
}

// --- Threat-model invariant: confidentiality against the MWS ---

TEST_F(ProtocolE2eTest, MwsHeldMaterialCannotDecrypt) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  // Everything the MWS stores for the first electric message:
  auto stored = s_->mws().message_db().FindByAttribute(
      UtilityScenario::kElectricAttr);
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(stored->size(), 1u);
  const store::StoredMessage& m = stored->at(0);

  // The MWS knows A and Nonce, hence the identity I = SHA1(A||Nonce) and
  // even Q_ID — but without the master secret it cannot build sI. Try the
  // obvious wrong keys an honest-but-curious MWS could form.
  const ibe::SystemParams& params = s_->pkg().PublicParams();
  const math::TypeAParams& group = *params.group;
  Bytes identity = ibe::DeriveIdentity(m.attribute, {m.nonce});
  ibe::BfIbe ibe(group);
  math::EcPoint q_id = ibe.HashToPoint(identity);

  ibe::HybridSealer sealer(group, s_->options().dem);
  auto u = group.curve().Deserialize(m.u);
  ASSERT_TRUE(u.ok());
  ibe::HybridCiphertext ct{u.value(), m.ciphertext};
  Bytes original = BytesFromString("meter=");

  for (const math::EcPoint& wrong_d :
       {q_id, params.p_pub, group.curve().Add(q_id, params.p_pub),
        group.generator(), u.value()}) {
    auto attempt = sealer.Open(ibe::IbePrivateKey{wrong_d}, ct);
    if (attempt.ok()) {
      // CBC padding accidentally validated: the plaintext must still be
      // garbage, not a meter reading.
      EXPECT_NE(
          Bytes(attempt->begin(),
                attempt->begin() +
                    std::min(attempt->size(), original.size())),
          original);
    }
  }
}

// --- Threat-model invariant: attribute hiding from RCs ---

TEST_F(ProtocolE2eTest, RcOnlySeesAidsNeverAttributes) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  client::ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto response = rc.Retrieve();
  ASSERT_TRUE(response.ok());
  // Wire-visible fields carry no attribute strings.
  for (const wire::RetrievedMessage& m : response->messages) {
    EXPECT_GT(m.aid, 0u);
    Bytes encoded = m.Encode();
    std::string as_string = util::StringFromBytes(encoded);
    EXPECT_EQ(as_string.find("ELECTRIC"), std::string::npos);
    EXPECT_EQ(as_string.find("WATER"), std::string::npos);
    EXPECT_EQ(as_string.find("GAS"), std::string::npos);
  }
  // The token the RC can open exposes the session key and the ticket
  // ciphertext only — attribute names stay inside the sealed ticket.
  // (Verified structurally: TokenPlain has no attribute field, and the
  // ticket is ciphertext under the MWS<->PKG key the RC does not hold.)
}

// --- Threat-model invariant: revocation (requirement iii) ---

TEST_F(ProtocolE2eTest, RevocationBlocksFutureMessages) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  auto before = s_->RetrieveFor(UtilityScenario::kCServices).value();
  EXPECT_EQ(before.size(), 3u);

  // C-Services loses the electric grant (apartment complex churn, §III).
  ASSERT_TRUE(s_->mws()
                  .RevokeAttribute(UtilityScenario::kCServices,
                                   UtilityScenario::kElectricAttr)
                  .ok());
  ASSERT_TRUE(s_->DepositReadings(1).ok());

  auto after = s_->RetrieveFor(UtilityScenario::kCServices).value();
  // Sees water+gas new messages (2) but no new electric; old messages
  // under revoked grants also disappear from retrieval, because grants
  // are resolved per fetch.
  for (const ReceivedMessage& m : after) {
    auto reading = MeterReading::FromPayload(m.plaintext).value();
    EXPECT_NE(reading.klass, MeterClass::kElectric);
  }
  EXPECT_EQ(after.size(), 4u);  // 2 old (water,gas) + 2 new (water,gas)
}

TEST_F(ProtocolE2eTest, RevokedAidRejectedByPkgWithFreshTicket) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  client::ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto response = rc.Retrieve();
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->messages.empty());
  const wire::RetrievedMessage& m = response->messages[0];

  // Revoke everything for C-Services, then get a *fresh* ticket: the PKG
  // must refuse the old AID because the new ticket no longer carries it.
  for (const char* attr :
       {UtilityScenario::kElectricAttr, UtilityScenario::kWaterAttr,
        UtilityScenario::kGasAttr}) {
    ASSERT_TRUE(
        s_->mws().RevokeAttribute(UtilityScenario::kCServices, attr).ok());
  }
  ASSERT_TRUE(rc.Authenticate().ok());
  auto fresh = rc.Retrieve();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->messages.empty());
  ASSERT_TRUE(rc.AuthenticateWithPkg(fresh->token).ok());
  auto key = rc.RequestKey(m.aid, m.nonce);
  EXPECT_FALSE(key.ok());
  EXPECT_EQ(key.status().code(), util::StatusCode::kPermissionDenied);
}

// --- Gatekeeper and PKG authentication failures ---

TEST_F(ProtocolE2eTest, WrongPasswordRejected) {
  auto keys = crypto::RsaGenerateKeyPair(768, s_->rng()).value();
  client::ReceivingClient imposter(
      UtilityScenario::kCServices, "wrong-password", std::move(keys),
      s_->pkg().PublicParams(), s_->options().cipher, s_->options().dem,
      &s_->transport(), &s_->clock(), &s_->rng());
  EXPECT_FALSE(imposter.Authenticate().ok());
}

TEST_F(ProtocolE2eTest, UnknownIdentityRejected) {
  auto keys = crypto::RsaGenerateKeyPair(768, s_->rng()).value();
  client::ReceivingClient stranger(
      "NOBODY-CORP", "pw", std::move(keys), s_->pkg().PublicParams(),
      s_->options().cipher, s_->options().dem, &s_->transport(), &s_->clock(),
      &s_->rng());
  EXPECT_FALSE(stranger.Authenticate().ok());
}

TEST_F(ProtocolE2eTest, RetrieveWithoutSessionRejected) {
  wire::RetrieveRequest request;
  request.session_id = BytesFromString("bogus-session-16");
  EXPECT_FALSE(s_->mws().Retrieve(request).ok());
}

TEST_F(ProtocolE2eTest, ReplayedRcAuthRejected) {
  client::ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  // Craft one auth request and submit it twice.
  wire::RcAuthPlain plain;
  plain.rc_identity = UtilityScenario::kCServices;
  plain.timestamp_micros = s_->clock().NowMicros();
  plain.client_nonce = s_->rng().Generate(16);
  Bytes auth_key = wire::DeriveAuthKey(
      wire::HashPassword(std::string("pw-") + UtilityScenario::kCServices),
      s_->options().cipher);
  wire::RcAuthRequest request;
  request.rc_identity = UtilityScenario::kCServices;
  request.rsa_public_key = crypto::SerializeRsaPublicKey(rc.public_key());
  request.auth_ciphertext =
      crypto::CbcEncrypt(s_->options().cipher, auth_key, plain.Encode(),
                         s_->rng())
          .value();
  EXPECT_TRUE(s_->mws().Authenticate(request).ok());
  auto replay = s_->mws().Authenticate(request);
  EXPECT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsUnauthenticated());
}

TEST_F(ProtocolE2eTest, TamperedTicketRejectedByPkg) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  client::ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto response = rc.Retrieve();
  ASSERT_TRUE(response.ok());
  Bytes token = response->token;
  // Flip a byte deep in the sealed token body (the CBC part).
  token[token.size() - 3] ^= 0x20;
  EXPECT_FALSE(rc.AuthenticateWithPkg(token).ok());
}

TEST_F(ProtocolE2eTest, ExpiredTicketRejectedByPkg) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  client::ReceivingClient& rc = s_->company(UtilityScenario::kCServices);
  ASSERT_TRUE(rc.Authenticate().ok());
  auto response = rc.Retrieve();
  ASSERT_TRUE(response.ok());
  s_->clock().AdvanceMicros(s_->mws().options().ticket_lifetime_micros + 1);
  EXPECT_FALSE(rc.AuthenticateWithPkg(response->token).ok());
}

TEST_F(ProtocolE2eTest, KeyRequestWithoutPkgSessionRejected) {
  wire::KeyRequest request;
  request.session_id = BytesFromString("bogus-session-16");
  request.aid = 1;
  request.nonce = Bytes(16, 0);
  EXPECT_FALSE(s_->pkg().ExtractKey(request).ok());
}

// --- Cross-company isolation ---

TEST_F(ProtocolE2eTest, CompaniesCannotDecryptEachOthersClasses) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  // Water & Resources retrieves its one water message and, with its PKG
  // session open, asks for a key under an AID it does not own.
  client::ReceivingClient& water =
      s_->company(UtilityScenario::kWaterResources);
  ASSERT_TRUE(water.Authenticate().ok());
  auto response = water.Retrieve();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->messages.size(), 1u);
  ASSERT_TRUE(water.AuthenticateWithPkg(response->token).ok());

  // AIDs are assigned sequentially at scenario setup; probe a few and
  // verify only the owned AID extracts.
  size_t granted = 0, denied = 0;
  for (uint64_t aid = 1; aid <= 6; ++aid) {
    auto key = water.RequestKey(aid, response->messages[0].nonce);
    if (key.ok()) {
      ++granted;
    } else {
      ++denied;
    }
  }
  EXPECT_EQ(granted, 1u);  // exactly its own water grant
  EXPECT_EQ(denied, 5u);
}

// --- The Fig. 2 private-key retrieval flow, step by step ---

TEST_F(ProtocolE2eTest, Fig2KeyRetrievalStepByStep) {
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  client::ReceivingClient& rc = s_->company(UtilityScenario::kElectricGas);

  // (1) RC authenticates with the Gatekeeper.
  ASSERT_FALSE(rc.HasMwsSession());
  ASSERT_TRUE(rc.Authenticate().ok());
  ASSERT_TRUE(rc.HasMwsSession());

  // (2) MWS returns records + token.
  auto response = rc.Retrieve();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->messages.size(), 2u);
  ASSERT_FALSE(response->token.empty());

  // (3) RC authenticates with the PKG using the ticket.
  ASSERT_FALSE(rc.HasPkgSession());
  ASSERT_TRUE(rc.AuthenticateWithPkg(response->token).ok());
  ASSERT_TRUE(rc.HasPkgSession());

  // (4) Per-message key extraction + decryption.
  for (const wire::RetrievedMessage& m : response->messages) {
    auto key = rc.RequestKey(m.aid, m.nonce);
    ASSERT_TRUE(key.ok()) << key.status();
    auto plaintext = rc.DecryptMessage(m, key.value());
    ASSERT_TRUE(plaintext.ok()) << plaintext.status();
    EXPECT_TRUE(MeterReading::FromPayload(plaintext.value()).ok());
  }
}

// --- Parameter-strength sweep: the paper-scale 160/512 preset ---

TEST(ProtocolPresetTest, FullPipelineAtPaperParameterStrength) {
  UtilityScenario::Options options;
  options.preset = math::ParamPreset::kTest;  // PBC a.param shape
  auto scenario = UtilityScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto& s = *scenario.value();
  ASSERT_TRUE(s.DepositReadings(1).ok());
  auto messages = s.RetrieveFor(UtilityScenario::kCServices);
  ASSERT_TRUE(messages.ok()) << messages.status();
  EXPECT_EQ(messages->size(), 3u);
  for (const ReceivedMessage& m : messages.value()) {
    EXPECT_TRUE(MeterReading::FromPayload(m.plaintext).ok());
  }
}

// --- Cipher sweep: the full protocol under each DEM/protocol cipher ---

TEST(ProtocolCipherTest, FullPipelineUnderAes) {
  UtilityScenario::Options options;
  options.cipher = crypto::CipherKind::kAes128;
  options.dem = crypto::CipherKind::kAes128;
  auto scenario = UtilityScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto& s = *scenario.value();
  ASSERT_TRUE(s.DepositReadings(1).ok());
  EXPECT_EQ(s.RetrieveFor(UtilityScenario::kCServices)->size(), 3u);
}

TEST(ProtocolCipherTest, FullPipelineUnderTripleDes) {
  UtilityScenario::Options options;
  options.cipher = crypto::CipherKind::kTripleDes;
  options.dem = crypto::CipherKind::kTripleDes;
  auto scenario = UtilityScenario::Create(options);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto& s = *scenario.value();
  ASSERT_TRUE(s.DepositReadings(1).ok());
  EXPECT_EQ(s.RetrieveFor(UtilityScenario::kCServices)->size(), 3u);
}

// --- Transport accounting sanity ---

TEST_F(ProtocolE2eTest, SimulatedNetworkChargesTraffic) {
  s_->transport().set_model(wire::NetworkModel::MeterUplink());
  s_->transport().ResetStats();
  ASSERT_TRUE(s_->DepositReadings(1).ok());
  const wire::TransportStats& stats = s_->transport().stats();
  EXPECT_EQ(stats.calls, 3u);
  EXPECT_GT(stats.request_bytes, 0u);
  EXPECT_GT(stats.simulated_network_micros,
            3 * 2 * 300'000 - 1);  // >= latency both ways per call
}

}  // namespace
}  // namespace mws::sim
